"""The stable ``repro.api`` surface and the legacy-path deprecation shims."""

import importlib
import warnings

import numpy as np
import pytest

import repro


class TestApiSurface:
    def test_imports_cleanly_without_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api = importlib.reload(importlib.import_module("repro.api"))
        assert api.Flare is not None

    def test_all_exports_resolve(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_all_is_sorted_within_no_duplicates(self):
        from repro import api

        assert len(api.__all__) == len(set(api.__all__))

    def test_runtime_names_exported(self):
        from repro.api import (  # noqa: F401
            DispatchError,
            Executor,
            ProcessExecutor,
            ResolvedRuntime,
            RuntimeCache,
            RuntimeConfig,
            SerialExecutor,
            ShardRef,
            active_shared_segments,
            default_cache,
            resolve_executor,
            resolve_runtime,
        )


class TestRetiredTopLevelImports:
    def test_api_name_raises_with_migration_hint(self):
        with pytest.raises(AttributeError, match="from repro.api import Flare"):
            repro.Flare

    def test_all_lists_only_version(self):
        assert repro.__all__ == ["__version__"]

    def test_submodule_access_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.runtime is not None
            assert repro.workloads is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestKeywordOnlyKnobs:
    def test_percentile_interval_positional_confidence_warns(self):
        from repro.stats.sampling import percentile_interval

        values = np.linspace(0.0, 1.0, 101)
        with pytest.warns(DeprecationWarning, match="confidence"):
            legacy = percentile_interval(values, 0.9)
        assert legacy == percentile_interval(values, confidence=0.9)

    def test_percentile_interval_rejects_extra_positionals(self):
        from repro.stats.sampling import percentile_interval

        with pytest.raises(TypeError):
            percentile_interval([1.0, 2.0], 0.9, 0.8)

    def test_stratify_by_metric_positional_n_strata_warns(self):
        from repro.baselines.stratified import stratify_by_metric

        values = np.linspace(0.0, 10.0, 60)
        with pytest.warns(DeprecationWarning, match="n_strata"):
            legacy = stratify_by_metric(values, 4)
        modern = stratify_by_metric(values, n_strata=4)
        np.testing.assert_array_equal(legacy, modern)
