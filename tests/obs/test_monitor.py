"""Drift monitor: mergeable-state math, bit-identity, drift detection.

The monitor's core claim is that serial and process-parallel passes
score *bit-identically* because :class:`DriftState` keeps per-batch
partials and finalises them with exactly-rounded ``math.fsum`` — so the
tests compare full report dicts with ``==``, never ``approx``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    DriftMonitor,
    DriftThresholds,
    FaultSpec,
    ProcessExecutor,
    ResilienceConfig,
    RetryPolicy,
    RuntimeConfig,
    SMALL_SHAPE,
)
from repro.cluster import ScenarioDataset
from repro.obs import DriftState


@pytest.fixture(scope="module")
def monitor(small_flare) -> DriftMonitor:
    return DriftMonitor(small_flare)


def _profiled_batches(monitor, dataset, chunk=40):
    """(matrix, durations) slices of one profiled pass.

    Profiled rows are bit-identical under any batching (noise is drawn
    in global row order), so slicing one full-pass matrix reproduces
    exactly what per-shard parallel batches would have carried.
    """
    profiler = monitor.flare.config.make_profiler()
    matrix = profiler.profile(dataset).matrix
    durations = dataset.durations()
    return [
        (matrix[start : start + chunk], durations[start : start + chunk])
        for start in range(0, matrix.shape[0], chunk)
    ]


class TestDriftStateMerge:
    def test_merge_is_associative_bit_for_bit(self, monitor, small_sim):
        batches = _profiled_batches(monitor, small_sim.dataset)
        assert len(batches) >= 3
        a, b, c = (
            monitor.batch_state(m, d) for m, d in batches[:3]
        )
        left = a.merge(b).merge(c).finalize()
        right = a.merge(b.merge(c)).finalize()
        for key in ("counts", "mass", "dist_sum", "sq_sum"):
            assert np.array_equal(left[key], right[key])
        assert left["novel"] == right["novel"]
        # And the scored reports agree exactly too.
        assert (
            monitor.report(a.merge(b).merge(c)).to_dict()
            == monitor.report(a.merge(b.merge(c))).to_dict()
        )

    def test_merge_rejects_cluster_mismatch(self):
        with pytest.raises(ValueError, match="cannot merge"):
            DriftState(n_clusters=3).merge(DriftState(n_clusters=4))

    def test_state_json_round_trip_is_exact(self, monitor, small_sim):
        batches = _profiled_batches(monitor, small_sim.dataset)
        state = monitor.batch_state(*batches[0]).merge(
            monitor.batch_state(*batches[1])
        )
        restored = DriftState.from_dict(
            json.loads(json.dumps(state.to_dict()))
        )
        assert (
            monitor.report(state).to_dict()
            == monitor.report(restored).to_dict()
        )

    def test_empty_state_rejected_by_report(self, monitor):
        with pytest.raises(ValueError, match="no scenarios"):
            monitor.report(DriftState(n_clusters=monitor.baseline.n_clusters))


class TestSerialParallelIdentity:
    def test_serial_equals_process(self, monitor, small_sim):
        serial = monitor.observe(small_sim.dataset)
        parallel = monitor.observe(
            small_sim.dataset,
            runtime=RuntimeConfig(executor="process:2"),
        )
        assert serial.to_dict() == parallel.to_dict()

    def test_serial_equals_process_under_fault_injection(
        self, monitor, small_sim
    ):
        serial = monitor.observe(small_sim.dataset)
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=RetryPolicy(
                max_retries=5, backoff_base_s=0.0, backoff_jitter=0.0
            ),
            faults=FaultSpec(exception_rate=0.25, seed=13),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            chaotic = monitor.observe(small_sim.dataset, runtime=pool)
        assert serial.to_dict() == chaotic.to_dict()

    def test_rechunking_changes_scores_only_at_rounding_noise(
        self, monitor, small_sim
    ):
        # Bit-identity is guaranteed for any *grouping of the same
        # batches* (what serial vs parallel actually varies — see the
        # associativity test).  Re-chunking the stream itself changes
        # the intra-batch bincount sums, so scores may move in the last
        # ulp — but no further.
        reports = []
        for chunk in (17, 64):
            batches = _profiled_batches(monitor, small_sim.dataset, chunk)
            state = DriftState(n_clusters=monitor.baseline.n_clusters)
            for matrix, durations in batches:
                state = state.merge(monitor.batch_state(matrix, durations))
            reports.append(monitor.report(state))
        a, b = reports
        assert a.status == b.status
        assert [c.n_observed for c in a.clusters] == [
            c.n_observed for c in b.clusters
        ]
        assert a.psi_total == pytest.approx(b.psi_total, rel=1e-9, abs=1e-18)
        assert a.sse_per_scenario == pytest.approx(
            b.sse_per_scenario, rel=1e-12
        )


class TestDriftScoring:
    def test_self_monitoring_is_healthy(self, monitor, small_sim):
        report = monitor.observe(small_sim.dataset)
        assert report.status == "healthy"
        assert report.n_scenarios == len(small_sim.dataset)
        # Scoring the fit population itself reproduces the fit-time
        # distances exactly, so SSE matches and PSI is numerically zero.
        assert report.psi_total < 1e-9
        assert report.sse_ratio == pytest.approx(1.0, abs=1e-12)
        # Novelty is calibrated at the fit-time distance quantile.
        assert report.novelty_rate <= 0.02

    def test_flare_health_facade(self, small_flare):
        report = small_flare.health()
        assert report.status == "healthy"
        assert report.exit_code == 0

    def test_shifted_mix_is_flagged(self, monitor, small_sim):
        # Reweight the observed mix: all observation time moves onto
        # the members of one cluster (paper §5.6 scheduler-change flow).
        dataset = small_sim.dataset
        labels = monitor.flare.analysis.kmeans.labels
        target = int(labels[0])
        durations = {
            s.key: 10_000.0 if labels[i] == target else 0.01
            for i, s in enumerate(dataset.scenarios)
        }
        shifted = dataset.with_weights_from(durations)
        report = monitor.observe(shifted)
        assert report.status == "alert"
        assert report.exit_code == 2
        assert target in report.flagged_clusters
        assert report.psi_total > monitor.thresholds.psi_alert

    def test_shape_mismatch_rejected(self, monitor, tiny_dataset):
        alien = ScenarioDataset(
            shape=SMALL_SHAPE, scenarios=tiny_dataset.scenarios
        )
        with pytest.raises(ValueError, match="cannot monitor"):
            monitor.observe(alien)

    def test_custom_thresholds_change_status(self, small_flare, small_sim):
        paranoid = DriftMonitor(
            small_flare,
            thresholds=DriftThresholds(novelty_warn=0.0, novelty_alert=2.0),
        )
        report = paranoid.observe(small_sim.dataset)
        # novelty_rate >= 0.0 always trips the zero warn threshold.
        assert report.status == "warn"
        assert report.exit_code == 1

    def test_missing_baseline_rejected(self, small_flare):
        from dataclasses import replace
        from types import SimpleNamespace

        stripped = SimpleNamespace(
            representatives=replace(
                small_flare.representatives, baseline=None
            )
        )
        with pytest.raises(ValueError, match="no fit-time baseline"):
            DriftMonitor(stripped)

    def test_zero_duration_stream_falls_back_to_counts(
        self, monitor, small_sim
    ):
        batches = _profiled_batches(monitor, small_sim.dataset)
        state = DriftState(n_clusters=monitor.baseline.n_clusters)
        for matrix, durations in batches:
            state = state.merge(
                monitor.batch_state(matrix, np.zeros_like(durations))
            )
        report = monitor.report(state)
        shares = [c.observed_share for c in report.clusters]
        assert sum(shares) == pytest.approx(1.0)
