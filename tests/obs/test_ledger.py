"""Run ledger: record round-trips, legacy coercion, regression rules.

The MAD-rule properties are hypothesis-driven: a constant history must
never flag (no false positives from zero-variance baselines), and an
injected 2x step against a constant history must always flag, in both
directions.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BENCH_RULES,
    MetricRule,
    RegressionDetector,
    RunLedger,
    RunRecord,
    disable_ledger,
    get_ledger,
    record_run,
    set_ledger,
)
from repro.obs.ledger import LEDGER_SCHEMA_VERSION


@pytest.fixture(autouse=True)
def _isolated_ledger():
    previous = get_ledger()
    disable_ledger()
    yield
    set_ledger(previous)


def _bench(value: float, metric: str = "m") -> RunRecord:
    return RunRecord(kind="bench", metrics={metric: value})


# A legacy (pre-observatory) bench_smoke.jsonl line, abbreviated from a
# real record: flat dict, no schema_version, nested numeric dicts.
LEGACY_LINE = {
    "timestamp": "2026-08-06T21:03:10+0000",
    "python": "3.11.7",
    "cpu_count": 1,
    "workers": 1,
    "n_trials": 1000,
    "serial_s": 0.0388,
    "speedup": 0.592,
    "bit_identical": True,
    "stage_breakdown": {
        "sampling.trials": {"count": 2, "wall_s": 0.0951},
    },
    "profile_speedup": {"1": 1.169, "2": 0.962},
}


class TestRunRecord:
    def test_round_trip_through_jsonl(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        record = record_run(
            "fit",
            config={"n_clusters": 8},
            metrics={"sse": 1.25, "n_scenarios": 120},
            labels={"streaming": False},
            ledger=ledger,
        )
        (loaded,) = ledger.read()
        assert loaded.to_dict() == record.to_dict()
        assert loaded.schema_version == LEDGER_SCHEMA_VERSION
        assert loaded.kind == "fit"
        assert loaded.metrics["sse"] == 1.25
        assert loaded.env["python"]

    def test_explicit_stages_override_autofolded(self, tmp_path):
        stages = {"sampling.trials": {"count": 2, "wall_s": 0.095}}
        record = record_run("bench", stages=stages)
        assert record.stages["sampling.trials"] == stages["sampling.trials"]

    def test_legacy_line_is_coerced(self):
        record = RunRecord.from_dict(json.loads(json.dumps(LEGACY_LINE)))
        assert record.kind == "bench"
        assert record.schema_version == 0
        assert record.timestamp == "2026-08-06T21:03:10+0000"
        assert record.env == {"python": "3.11.7", "cpu_count": 1}
        # Numbers (nested ones dotted) land in metrics, bools in labels.
        assert record.metrics["serial_s"] == 0.0388
        assert record.metrics["profile_speedup.2"] == 0.962
        assert record.labels["bit_identical"] is True
        assert "timestamp" not in record.labels
        assert record.stages["sampling.trials"]["wall_s"] == 0.0951

    def test_mixed_file_reads_both_schemas(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        ledger = RunLedger(path)
        with open(path, "w") as fh:
            fh.write(json.dumps(LEGACY_LINE) + "\n\n")
        record_run("bench", metrics={"serial_s": 0.04}, ledger=ledger)
        old, new = ledger.read()
        assert (old.schema_version, new.schema_version) == (
            0,
            LEDGER_SCHEMA_VERSION,
        )
        # Shared metric names: the detector sees one trajectory.
        assert "serial_s" in old.metrics and "serial_s" in new.metrics

    def test_active_ledger_plumbing(self, tmp_path):
        from repro.obs import enable_ledger

        ledger = enable_ledger(tmp_path / "active.jsonl")
        assert get_ledger() is ledger
        record_run("evaluate", metrics={"reduction_pct": 99.0})
        disable_ledger()
        record_run("evaluate", metrics={"reduction_pct": 98.0})
        assert len(ledger.read()) == 1  # second record went nowhere

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        for i in range(5):
            record_run("bench", metrics={"i": float(i)}, ledger=ledger)
        tail = ledger.tail(2)
        assert [r.metrics["i"] for r in tail] == [3.0, 4.0]


class TestMetricRuleValidation:
    def test_rejects_negative_slack_parameters(self):
        with pytest.raises(ValueError):
            MetricRule("m", k=-1.0)
        with pytest.raises(ValueError):
            MetricRule("m", min_samples=0)

    def test_detector_needs_rules(self):
        with pytest.raises(ValueError):
            RegressionDetector(())


class TestRegressionRules:
    @given(
        value=st.floats(
            min_value=1e-3,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        n=st.integers(min_value=4, max_value=20),
        lower_is_better=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_history_never_flags(self, value, n, lower_is_better):
        rule = MetricRule("m", lower_is_better=lower_is_better)
        finding = RegressionDetector.check_rule(
            rule, _bench(value), [_bench(value) for _ in range(n)]
        )
        assert finding.status == "ok"
        assert not finding.breached

    @given(
        value=st.floats(
            min_value=1e-3,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        n=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_detects_2x_step(self, value, n):
        history = [_bench(value) for _ in range(n)]
        slower = RegressionDetector.check_rule(
            MetricRule("m", lower_is_better=True), _bench(2 * value), history
        )
        assert slower.status == "regressed"
        collapsed = RegressionDetector.check_rule(
            MetricRule("m", lower_is_better=False), _bench(value / 2), history
        )
        assert collapsed.status == "regressed"

    @given(
        value=st.floats(
            min_value=1e-3,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        n=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_improvements_never_flag(self, value, n):
        history = [_bench(value) for _ in range(n)]
        faster = RegressionDetector.check_rule(
            MetricRule("m", lower_is_better=True), _bench(value / 2), history
        )
        sped_up = RegressionDetector.check_rule(
            MetricRule("m", lower_is_better=False), _bench(2 * value), history
        )
        assert faster.status == "ok"
        assert sped_up.status == "ok"

    def test_min_samples_defers_verdict(self):
        finding = RegressionDetector.check_rule(
            MetricRule("m"), _bench(99.0), [_bench(1.0)] * 3
        )
        assert finding.status == "insufficient-history"
        assert not finding.breached

    def test_missing_metric_reported(self):
        finding = RegressionDetector.check_rule(
            MetricRule("absent"), _bench(1.0), [_bench(1.0)] * 5
        )
        assert finding.status == "missing"

    def test_mad_slack_tolerates_natural_noise(self):
        # History alternates 1.0/1.4 (MAD 0.2); a 1.5 latest is inside
        # median + 3 * 1.4826 * MAD and must not flag.
        history = [_bench(1.0 + 0.4 * (i % 2)) for i in range(8)]
        finding = RegressionDetector.check_rule(
            MetricRule("m"), _bench(1.5), history
        )
        assert finding.status == "ok"


class TestRegressionDetector:
    def test_check_filters_kind_and_window(self, tmp_path):
        records = [RunRecord(kind="fit", metrics={"m": 1.0})]
        records += [_bench(1.0) for _ in range(6)]
        records += [_bench(50.0)]
        detector = RegressionDetector([MetricRule("m")])
        report = detector.check(records, kind="bench")
        assert not report.ok
        assert report.breaches[0].metric == "m"
        # A window smaller than min_samples defers instead of flagging.
        windowed = detector.check(records, kind="bench", window=2)
        assert windowed.findings[0].status == "insufficient-history"

    def test_check_rejects_empty(self):
        detector = RegressionDetector([MetricRule("m")])
        with pytest.raises(ValueError):
            detector.check([], kind="bench")

    def test_default_bench_rules_cover_headline_metrics(self):
        names = {rule.metric for rule in DEFAULT_BENCH_RULES}
        assert {"serial_s", "speedup", "memory_fit_s"} <= names

    def test_with_overrides(self):
        detector = RegressionDetector(DEFAULT_BENCH_RULES)
        tuned = detector.with_overrides(k=5.0, min_samples=10)
        assert all(r.k == 5.0 and r.min_samples == 10 for r in tuned.rules)
        # original untouched; no-op override returns self
        assert all(r.k == 3.0 for r in detector.rules)
        assert detector.with_overrides() is detector

    def test_report_render_and_dict(self):
        detector = RegressionDetector([MetricRule("m")])
        history = [_bench(1.0) for _ in range(5)]
        ok_report = detector.check(history + [_bench(1.0)])
        bad_report = detector.check(history + [_bench(9.0)])
        assert "PASS" in ok_report.render()
        assert "FAIL" in bad_report.render()
        assert "REGRESSED" in bad_report.render()
        assert bad_report.to_dict()["ok"] is False
