"""Prometheus text-format exporter over the metrics registry."""

from __future__ import annotations

import math

from repro.obs import MetricsRegistry, prometheus_text


def test_empty_registry_renders_empty():
    assert prometheus_text(MetricsRegistry()) == ""


def test_counters_and_gauges():
    metrics = MetricsRegistry()
    metrics.inc("replays_total", 3)
    metrics.set_gauge("monitor_psi_total", 0.125)
    text = prometheus_text(metrics)
    assert "# TYPE replays_total counter\nreplays_total 3.0\n" in text
    assert (
        "# TYPE monitor_psi_total gauge\nmonitor_psi_total 0.125\n" in text
    )
    assert text.endswith("\n")


def test_name_sanitization():
    metrics = MetricsRegistry()
    metrics.inc("chunk:sampling-trials.wall")
    metrics.inc("2fast")
    text = prometheus_text(metrics)
    assert "chunk:sampling_trials_wall 1.0" in text
    assert "_2fast 1.0" in text


def test_non_finite_values():
    metrics = MetricsRegistry()
    metrics.set_gauge("ratio", math.inf)
    metrics.set_gauge("bad", math.nan)
    text = prometheus_text(metrics)
    assert "ratio +Inf" in text
    assert "bad NaN" in text


def test_histogram_buckets_are_cumulative():
    metrics = MetricsRegistry()
    for value in (0.3, 0.4, 1.5, 6.0):
        metrics.observe("task_latency", value)
    text = prometheus_text(metrics)
    assert "# TYPE task_latency histogram" in text
    # frexp exponents: 0.3,0.4 -> le 0.5; 1.5 -> le 2.0; 6.0 -> le 8.0.
    assert 'task_latency_bucket{le="0.5"} 2' in text
    assert 'task_latency_bucket{le="2.0"} 3' in text
    assert 'task_latency_bucket{le="8.0"} 4' in text
    assert 'task_latency_bucket{le="+Inf"} 4' in text
    assert "task_latency_sum 8.2" in text
    assert "task_latency_count 4" in text


def test_active_registry_is_default():
    from repro.obs import get_metrics

    get_metrics().inc("defaulted")
    assert "defaulted 1.0" in prometheus_text()
