"""Exporters: JSONL round-trip, Chrome trace-event shape, summary."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    load_jsonl,
    render_summary,
    write_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer", stage="unit"):
        with tracer.span("inner", n_items=2):
            pass
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        metrics = MetricsRegistry()
        metrics.inc("replays_total", 3)
        metrics.observe("latency_s", 0.25)
        path = write_trace(
            tracer.spans(), tmp_path / "trace.jsonl", metrics=metrics
        )
        spans, loaded = load_jsonl(path)
        assert spans == tracer.spans()
        assert loaded.counter("replays_total") == 3.0
        assert loaded.histogram("latency_s").count == 1

    def test_without_metrics(self, tmp_path):
        tracer = _sample_tracer()
        path = write_trace(tracer.spans(), tmp_path / "bare.jsonl")
        spans, loaded = load_jsonl(path)
        assert len(spans) == 2
        assert loaded is None


class TestChromeTrace:
    def test_document_shape(self, tmp_path):
        tracer = _sample_tracer()
        metrics = MetricsRegistry()
        metrics.inc("replays_total")
        path = write_trace(
            tracer.spans(), tmp_path / "trace.json", metrics=metrics
        )
        document = json.loads(path.read_text())
        assert document["otherData"]["metrics"]["counters"] == {
            "replays_total": 1.0
        }
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert meta and meta[0]["name"] == "process_name"

    def test_events_normalised_and_linked(self):
        tracer = _sample_tracer()
        events = chrome_trace_events(tracer.spans())
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        outer, inner = complete["outer"], complete["inner"]
        # Timestamps are relative to the earliest span start.
        assert outer["ts"] == 0.0
        assert inner["ts"] >= 0.0
        assert inner["dur"] <= outer["dur"]
        # Parent/child linkage and attrs survive in args.
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert inner["args"]["n_items"] == 2
        assert outer["args"]["stage"] == "unit"

    def test_empty_span_list(self):
        assert chrome_trace_events([]) == []


class TestRenderSummary:
    def test_combines_spans_and_metrics(self):
        tracer = _sample_tracer()
        metrics = MetricsRegistry()
        metrics.inc("replays_total", 9)
        text = render_summary(tracer, metrics, include_runtime_stats=False)
        assert "outer" in text
        assert "replays_total" in text

    def test_defaults_to_active_globals(self):
        text = render_summary(include_runtime_stats=False)
        assert "tracing disabled" in text
