"""Metrics registry: counters, gauges, mergeable histograms."""

from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_metrics,
    inc,
    observe,
    set_gauge,
)


class TestHistogram:
    def test_observe_updates_summary(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_round_trip(self):
        hist = Histogram()
        for value in (0.25, 0.5, 8.0, 0.0):
            hist.observe(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.buckets == hist.buckets

    def test_merge_is_exact(self):
        left, right, reference = Histogram(), Histogram(), Histogram()
        for value in (0.1, 0.2, 0.4):
            left.observe(value)
            reference.observe(value)
        for value in (0.4, 3.0):
            right.observe(value)
            reference.observe(value)
        left.merge(right)
        assert left.count == reference.count
        assert left.total == reference.total
        assert left.minimum == reference.minimum
        assert left.maximum == reference.maximum
        assert left.buckets == reference.buckets

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.to_dict()["min"] is None


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        assert registry.counter("hits") == 3.0
        assert registry.counter("absent") == 0.0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("load", 0.5)
        registry.set_gauge("load", 0.9)
        assert registry.gauge("load") == 0.9
        assert registry.gauge("absent") is None

    def test_snapshot_merge_round_trip(self):
        source = MetricsRegistry()
        source.inc("replays_total", 5)
        source.set_gauge("workers", 4)
        source.observe("latency_s", 0.125)
        target = MetricsRegistry()
        target.inc("replays_total", 2)
        target.merge(source.snapshot())
        assert target.counter("replays_total") == 7.0
        assert target.gauge("workers") == 4.0
        assert target.histogram("latency_s").count == 1

    def test_clear_and_render(self):
        registry = MetricsRegistry()
        assert registry.render() == "no metrics recorded"
        registry.inc("n")
        registry.observe("h", 1.0)
        text = registry.render()
        assert "counters" in text and "histograms" in text
        registry.clear()
        assert registry.counters == {}


class TestModuleHelpers:
    def test_helpers_hit_active_registry(self):
        # The autouse fixture installed a fresh registry for this test.
        inc("unit_counter", 2)
        set_gauge("unit_gauge", 1.5)
        observe("unit_hist", 0.5)
        active = get_metrics()
        assert active.counter("unit_counter") == 2.0
        assert active.gauge("unit_gauge") == 1.5
        assert active.histogram("unit_hist").count == 1
