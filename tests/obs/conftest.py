"""Isolate each obs test from the process-global tracer/registry."""

import pytest

from repro.obs import MetricsRegistry, set_metrics
from repro.obs.tracing import get_tracer, set_tracer


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous_tracer = get_tracer()
    previous_metrics = set_metrics(MetricsRegistry())
    yield
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)
