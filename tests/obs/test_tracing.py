"""Tracer contract: nesting, attrs, decorator, errors, null tracer."""

import os

import pytest

from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    span,
    traced,
)
from repro.obs.tracing import detached_context


class TestSpanNesting:
    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        (root,) = tracer.spans()
        assert root.name == "root"
        assert root.parent_id is None
        assert root.pid == os.getpid()

    def test_children_reference_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["inner-a"].parent_id == outer.span_id
        assert by_name["inner-b"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None

    def test_completion_order_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_sibling_after_nested_block_is_not_a_child(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["second"].parent_id is None

    def test_current_span_id_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.span_id
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None

    def test_detached_context_breaks_inheritance(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with detached_context():
                assert tracer.current_span_id() is None
                with tracer.span("orphan"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["orphan"].parent_id is None


class TestSpanRecording:
    def test_attrs_and_live_updates(self):
        tracer = Tracer()
        with tracer.span("stage", n_items=3) as live:
            live.attrs["result"] = "ok"
        (record,) = tracer.spans()
        assert record.attrs == {"n_items": 3, "result": "ok"}

    def test_timings_recorded(self):
        tracer = Tracer()
        with tracer.span("timed"):
            sum(range(1000))
        (record,) = tracer.spans()
        assert record.wall_s > 0.0
        assert record.cpu_s >= 0.0
        assert record.peak_rss_delta_kb >= 0.0
        assert record.start_unix > 0.0

    def test_error_status_and_propagation(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (record,) = tracer.spans()
        assert record.status == "error"
        assert record.wall_s >= 0.0
        # The context variable was restored despite the exception.
        assert tracer.current_span_id() is None

    def test_to_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("wire", k="v"):
            pass
        (record,) = tracer.spans()
        clone = Span.from_dict(record.to_dict())
        assert clone == record

    def test_totals_aggregate_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("rep"):
                pass
        totals = tracer.totals()
        assert totals["rep"]["count"] == 3
        assert "rep" in tracer.render()


class TestIngest:
    def test_worker_roots_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("dispatch") as dispatch:
            pass
        # Worker payload: child completes (serializes) before its parent.
        payload = [
            {
                "name": "w-child",
                "span_id": 2,
                "parent_id": 1,
                "pid": 9999,
                "start_unix": 1.0,
                "wall_s": 0.1,
                "cpu_s": 0.1,
                "peak_rss_delta_kb": 0.0,
                "attrs": {},
                "status": "ok",
            },
            {
                "name": "w-root",
                "span_id": 1,
                "parent_id": None,
                "pid": 9999,
                "start_unix": 1.0,
                "wall_s": 0.2,
                "cpu_s": 0.2,
                "peak_rss_delta_kb": 0.0,
                "attrs": {},
                "status": "ok",
            },
        ]
        tracer.ingest(payload, parent_id=dispatch.span_id)
        by_name = {s.name: s for s in tracer.spans()}
        root = by_name["w-root"]
        child = by_name["w-child"]
        assert root.parent_id == dispatch.span_id
        assert child.parent_id == root.span_id
        assert root.pid == 9999
        # Remapped ids do not collide with the parent's.
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids))


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_enable_disable_cycle(self):
        tracer = enable()
        try:
            assert get_tracer() is tracer
            with span("global-stage"):
                pass
            assert [s.name for s in tracer.spans()] == ["global-stage"]
        finally:
            disable()
        assert get_tracer() is NULL_TRACER

    def test_module_level_span_is_noop_when_disabled(self):
        with span("ignored") as live:
            assert live is None
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.totals() == {}


class TestTracedDecorator:
    def test_records_when_enabled(self):
        @traced("deco.stage", flavour="unit")
        def work(x):
            return x + 1

        tracer = enable()
        try:
            assert work(1) == 2
        finally:
            disable()
        (record,) = tracer.spans()
        assert record.name == "deco.stage"
        assert record.attrs == {"flavour": "unit"}

    def test_default_label_is_qualname(self):
        @traced()
        def labelled():
            return 7

        tracer = enable()
        try:
            labelled()
        finally:
            disable()
        (record,) = tracer.spans()
        assert "labelled" in record.name

    def test_noop_when_disabled(self):
        calls = []

        @traced("deco.off")
        def work():
            calls.append(1)

        work()
        assert calls == [1]
