"""Unit tests for text radar rendering."""

import numpy as np
import pytest

from repro.reporting import (
    render_cluster_profile,
    render_radar_report,
    signed_bar,
)


class TestSignedBar:
    def test_positive_bar_right_of_pivot(self):
        bar = signed_bar(1.0, scale=2.0, width=10)
        left, right = bar.split("|")
        assert "#" not in left
        assert right.count("#") == 5

    def test_negative_bar_left_of_pivot(self):
        bar = signed_bar(-2.0, scale=2.0, width=10)
        left, right = bar.split("|")
        assert left.count("#") == 10
        assert "#" not in right

    def test_zero_is_empty(self):
        bar = signed_bar(0.0)
        assert "#" not in bar

    def test_saturates_at_scale(self):
        assert signed_bar(100.0, scale=2.0, width=8).count("#") == 8

    def test_constant_width(self):
        for v in (-3.0, -0.5, 0.0, 0.7, 5.0):
            assert len(signed_bar(v, width=10)) == 21

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            signed_bar(1.0, scale=0.0)
        with pytest.raises(ValueError):
            signed_bar(1.0, width=0)


class TestClusterProfile:
    def test_header_has_id_and_weight(self):
        out = render_cluster_profile(3, 0.125, np.array([0.5, -0.5]))
        assert out.splitlines()[0] == "Cluster 3 (weight 12.5%)"

    def test_one_line_per_pc(self):
        out = render_cluster_profile(0, 0.5, np.array([0.1, 0.2, 0.3]))
        assert len(out.splitlines()) == 4

    def test_spread_appended(self):
        out = render_cluster_profile(
            0, 0.5, np.array([1.0]), spread=np.array([0.25])
        )
        assert "±0.25" in out

    def test_spread_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_cluster_profile(
                0, 0.5, np.array([1.0, 2.0]), spread=np.array([0.1])
            )


class TestRadarReport:
    def test_block_per_cluster(self):
        centroids = np.zeros((3, 2))
        weights = np.full(3, 1 / 3)
        out = render_radar_report(centroids, weights)
        assert out.count("Cluster ") == 3

    def test_weight_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_radar_report(np.zeros((2, 2)), np.array([1.0]))

    def test_1d_centroids_rejected(self):
        with pytest.raises(ValueError):
            render_radar_report(np.zeros(3), np.ones(3))
