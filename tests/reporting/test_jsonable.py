"""Unit tests for JSON conversion of result objects."""

import dataclasses
import json

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.reporting import to_jsonable


class TestPrimitives:
    def test_passthrough(self):
        for value in (None, True, 3, "x", 2.5):
            assert to_jsonable(value) == value

    def test_non_finite_floats_become_strings(self):
        assert to_jsonable(float("nan")) == "nan"
        assert to_jsonable(float("inf")) == "inf"

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int32(4)) == 4
        assert isinstance(to_jsonable(np.float64(1.5)), float)

    def test_numpy_arrays(self):
        out = to_jsonable(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out == [[1.0, 2.0], [3.0, 4.0]]

    def test_enum(self):
        from repro.perfmodel import Priority

        assert to_jsonable(Priority.HIGH) == "HP"

    def test_containers(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable({"a": np.int64(1)}) == {"a": 1}

    def test_unknown_object_reprs(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert to_jsonable(Weird()) == "<weird>"


class TestDataclasses:
    def test_nested_dataclass(self):
        @dataclasses.dataclass
        class Inner:
            values: np.ndarray

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner

        out = to_jsonable(Outer(name="x", inner=Inner(np.arange(3.0))))
        assert out == {"name": "x", "inner": {"values": [0.0, 1.0, 2.0]}}

    def test_feature_callable_dropped(self):
        out = to_jsonable(FEATURE_1_CACHE)
        assert out["name"] == "feature1"
        assert "apply" not in out

    def test_real_result_serialises(self, small_flare):
        estimate = small_flare.evaluate(FEATURE_1_CACHE)
        payload = json.dumps(to_jsonable(estimate))
        back = json.loads(payload)
        assert back["reduction_pct"] == pytest.approx(
            estimate.reduction_pct
        )
        assert len(back["per_cluster"]) == len(estimate.per_cluster)

    def test_depth_guard(self):
        nested = [1]
        ref = nested
        for _ in range(40):
            ref.append([1])
            ref = ref[-1]
        out = to_jsonable(nested)  # must not recurse forever
        assert isinstance(out, list)
