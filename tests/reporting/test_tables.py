"""Unit tests for ASCII table rendering."""

import pytest

from repro.reporting import format_value, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"
        assert format_value(3.14159, precision=4) == "3.1416"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool_not_formatted_as_number(self):
        assert format_value(True) == "True"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["job", "impact"], [["GA", 12.5], ["WSC", 3.25]])
        lines = out.splitlines()
        assert lines[0].startswith("job")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_numeric_columns_right_aligned(self):
        out = render_table(["name", "v"], [["a", 1.0], ["b", 100.0]])
        lines = out.splitlines()
        assert lines[2].endswith("  1.00")
        assert lines[3].endswith("100.00")

    def test_text_columns_left_aligned(self):
        out = render_table(["name", "v"], [["a", 1], ["long", 2]])
        assert out.splitlines()[2].startswith("a   ")

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows_ok(self):
        out = render_table(["a", "b"], [])
        assert "a" in out

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_mixed_column_not_right_aligned(self):
        out = render_table(["v"], [["x"], [1.0]])
        # Mixed type column is treated as text.
        assert out.splitlines()[2].startswith("x")
