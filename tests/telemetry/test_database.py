"""Unit tests for the in-memory relational store."""

import pytest

from repro.telemetry import Column, Database, Schema, Table


@pytest.fixture()
def schema():
    return Schema(
        columns=(
            Column("id", int),
            Column("name", str),
            Column("value", float),
            Column("note", str, nullable=True),
        ),
        primary_key="id",
    )


@pytest.fixture()
def table(schema):
    t = Table("metrics", schema)
    t.insert({"id": 1, "name": "mips", "value": 100.0, "note": None})
    t.insert({"id": 2, "name": "ipc", "value": 0.8, "note": "x"})
    t.insert({"id": 3, "name": "mips", "value": 50.0, "note": None})
    return t


class TestColumn:
    def test_type_check(self):
        col = Column("x", int)
        assert col.validate(3) == 3
        with pytest.raises(TypeError):
            col.validate("3")

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(TypeError, match="got bool"):
            Column("x", int).validate(True)

    def test_int_promoted_to_float(self):
        assert Column("x", float).validate(3) == 3.0

    def test_nullability(self):
        assert Column("x", str, nullable=True).validate(None) is None
        with pytest.raises(ValueError, match="not nullable"):
            Column("x", str).validate(None)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            Column("x", list)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(columns=(Column("a", int), Column("a", int)))

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(ValueError, match="not a column"):
            Schema(columns=(Column("a", int),), primary_key="b")

    def test_validate_row_rejects_unknown_columns(self, schema):
        with pytest.raises(ValueError, match="unknown columns"):
            schema.validate_row({"id": 1, "name": "x", "value": 1.0, "bad": 2})

    def test_missing_nullable_defaults_to_none(self, schema):
        row = schema.validate_row({"id": 1, "name": "x", "value": 1.0})
        assert row["note"] is None


class TestTable:
    def test_insert_and_len(self, table):
        assert len(table) == 3

    def test_primary_key_lookup(self, table):
        assert table.get(2)["name"] == "ipc"

    def test_missing_key_raises(self, table):
        with pytest.raises(KeyError):
            table.get(99)

    def test_duplicate_pk_rejected(self, table):
        with pytest.raises(ValueError, match="duplicate primary key"):
            table.insert({"id": 1, "name": "dup", "value": 0.0})

    def test_select_where(self, table):
        rows = table.select(where=lambda r: r["name"] == "mips")
        assert {r["id"] for r in rows} == {1, 3}

    def test_select_order_and_limit(self, table):
        rows = table.select(order_by="value", descending=True, limit=2)
        assert [r["id"] for r in rows] == [1, 3]

    def test_select_unknown_order_column_raises(self, table):
        with pytest.raises(KeyError):
            table.select(order_by="nope")

    def test_select_returns_copies(self, table):
        row = table.select()[0]
        row["value"] = -1.0
        assert table.get(row["id"])["value"] != -1.0

    def test_update(self, table):
        n = table.update(lambda r: r["name"] == "mips", {"value": 0.0})
        assert n == 2
        assert table.get(1)["value"] == 0.0

    def test_update_pk_rejected(self, table):
        with pytest.raises(ValueError, match="primary key"):
            table.update(lambda r: True, {"id": 9})

    def test_update_type_checked(self, table):
        with pytest.raises(TypeError):
            table.update(lambda r: True, {"value": "not a float"})

    def test_delete_rebuilds_index(self, table):
        assert table.delete(lambda r: r["id"] == 2) == 1
        assert len(table) == 2
        with pytest.raises(KeyError):
            table.get(2)
        table.insert({"id": 2, "name": "back", "value": 1.0})
        assert table.get(2)["name"] == "back"

    def test_insert_many_counts(self, schema):
        t = Table("t", schema)
        n = t.insert_many(
            {"id": i, "name": "n", "value": float(i)} for i in range(5)
        )
        assert n == 5

    def test_iteration_yields_copies(self, table):
        for row in table:
            row["name"] = "mutated"
        assert table.get(1)["name"] == "mips"


class TestDatabase:
    def test_create_and_lookup(self, schema):
        db = Database()
        db.create_table("a", schema)
        assert db.table("a").name == "a"
        assert db.table_names == ("a",)

    def test_duplicate_table_rejected(self, schema):
        db = Database()
        db.create_table("a", schema)
        with pytest.raises(ValueError, match="already exists"):
            db.create_table("a", schema)

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            Database().table("missing")

    def test_drop_table(self, schema):
        db = Database()
        db.create_table("a", schema)
        db.drop_table("a")
        assert db.table_names == ()
        with pytest.raises(KeyError):
            db.drop_table("a")
