"""Unit tests for the temporal-metric extension (paper §4.1)."""

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.telemetry import Profiler, all_metric_names
from repro.telemetry.metrics import TEMPORAL_BASES, all_metric_specs


class TestRegistry:
    def test_default_registry_has_no_temporal_metrics(self):
        assert not any("-Std-" in n for n in all_metric_names())

    def test_temporal_registry_appends_std_metrics(self):
        names = all_metric_names(include_temporal=True)
        for base in TEMPORAL_BASES:
            assert f"{base}-Std-Machine" in names
            assert f"{base}-Std-HP" in names

    def test_temporal_specs_categorised(self):
        specs = all_metric_specs(include_temporal=True)
        temporal = [s for s in specs if s.category == "temporal"]
        assert len(temporal) == 2 * len(TEMPORAL_BASES)


class TestProfiler:
    @pytest.fixture(scope="class")
    def profiled(self, tiny_dataset):
        profiler = Profiler(noise_sigma=0.0, seed=5, temporal_samples=3)
        return profiler.profile(tiny_dataset)

    def test_matrix_includes_temporal_columns(self, profiled):
        assert profiled.n_metrics == 102 + 8

    def test_std_values_nonnegative_and_finite(self, profiled):
        for base in TEMPORAL_BASES:
            col = profiled.column(f"{base}-Std-Machine")
            assert (col >= 0.0).all()
            assert np.isfinite(col).all()

    def test_std_scales_with_counter_magnitude(self, profiled):
        mips_std = profiled.column("MIPS-Std-Machine")
        ipc_std = profiled.column("IPC-Std-Machine")
        assert mips_std.mean() > ipc_std.mean()

    def test_hp_std_zero_for_lp_only_scenarios(self, profiled, tiny_dataset):
        row = 3  # LP-only scenario
        assert profiled.column("MIPS-Std-HP")[row] == 0.0

    def test_deterministic(self, tiny_dataset):
        a = Profiler(noise_sigma=0.0, seed=5, temporal_samples=3).profile(
            tiny_dataset
        )
        b = Profiler(noise_sigma=0.0, seed=5, temporal_samples=3).profile(
            tiny_dataset
        )
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_jitter_widens_spread(self, tiny_dataset):
        narrow = Profiler(
            noise_sigma=0.0, seed=5, temporal_samples=4, temporal_jitter=0.05
        ).profile(tiny_dataset)
        wide = Profiler(
            noise_sigma=0.0, seed=5, temporal_samples=4, temporal_jitter=0.3
        ).profile(tiny_dataset)
        assert (
            wide.column("MIPS-Std-Machine").mean()
            > narrow.column("MIPS-Std-Machine").mean()
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Profiler(temporal_samples=-1)
        with pytest.raises(ValueError):
            Profiler(temporal_jitter=1.0)


class TestPipelineIntegration:
    def test_flare_with_temporal_metrics(self, tiny_dataset):
        config = FlareConfig(
            temporal_samples=2,
            analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2, seed=0),
        )
        flare = Flare(config).fit(tiny_dataset)
        assert any(
            "-Std-" in name for name in flare.profiled.metric_names
        )
        estimate = flare.evaluate(FEATURE_1_CACHE)
        assert estimate.reduction_pct > 0.0

    def test_temporal_classification_consistent(self, small_sim):
        config = FlareConfig(
            temporal_samples=2,
            analyzer=AnalyzerConfig(n_clusters=4, kmeans_restarts=2, seed=0),
        )
        flare = Flare(config).fit(small_sim.dataset)
        labels = flare.classify_dataset(small_sim.dataset)
        agreement = (labels == flare.analysis.labels).mean()
        assert agreement > 0.9


class TestVectorisedDifferential:
    """The vectorised temporal sampler vs the scalar reference.

    ``_temporal_metrics`` draws every jitter factor in one RNG call and
    batches the co-location solves; ``_temporal_metrics_scalar`` is the
    original per-sample loop kept as ground truth.  The two must agree
    bit for bit — any platform or refactor that breaks the documented
    stream/reduction equivalences fails here first.
    """

    def _assert_bitwise_equal(self, profiler, dataset):
        import struct

        from repro.perfmodel.batch import solve_colocation_many
        from repro.telemetry.metrics import MetricLevel
        from repro.telemetry.profiler import _level_metrics

        machine = dataset.shape.perf
        bits = lambda x: struct.pack("<d", x)  # noqa: E731
        for scenario in dataset.scenarios:
            solution = solve_colocation_many(
                machine,
                [list(scenario.instances)],
                solver=profiler.solver,
                memo=profiler.memo,
            )[0]
            pairs = list(zip(scenario.instances, solution.instances))
            base_values = {}
            for level, keep in (
                (MetricLevel.MACHINE, lambda p: True),
                (MetricLevel.HP, lambda p: p.is_high_priority),
            ):
                subset = [(ri, pi) for ri, pi in pairs if keep(pi)]
                for base, value in _level_metrics(
                    subset,
                    dataset.shape.vcpus,
                    dataset.shape.dram_gb,
                    machine,
                ).items():
                    base_values[f"{base}-{level.value}"] = value
            vectorised = profiler._temporal_metrics(
                scenario, machine, base_values
            )
            scalar = profiler._temporal_metrics_scalar(
                scenario, machine, base_values
            )
            assert vectorised.keys() == scalar.keys()
            for name in scalar:
                assert bits(vectorised[name]) == bits(scalar[name]), (
                    scenario.scenario_id,
                    name,
                    vectorised[name],
                    scalar[name],
                )

    def test_bitwise_equal_on_handcrafted_scenarios(self, tiny_dataset):
        profiler = Profiler(noise_sigma=0.0, seed=5, temporal_samples=4)
        self._assert_bitwise_equal(profiler, tiny_dataset)

    def test_bitwise_equal_on_simulated_scenarios(self, small_sim):
        from repro.cluster import ScenarioDataset

        profiler = Profiler(noise_sigma=0.02, seed=11, temporal_samples=3)
        subset = ScenarioDataset(
            shape=small_sim.dataset.shape,
            scenarios=small_sim.dataset.scenarios[:25],
        )
        self._assert_bitwise_equal(profiler, subset)
