"""Stateful property-based tests for the relational store.

A hypothesis state machine drives random insert/update/delete/select
sequences against a `Table` while maintaining a plain-dict mirror; every
step cross-checks the two. This catches index-rebuild and copy-semantics
bugs that example-based tests miss.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.telemetry import Column, Schema, Table

keys = st.integers(0, 30)
values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
names = st.sampled_from(["mips", "ipc", "mpki", "util"])


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = Table(
            "t",
            Schema(
                columns=(
                    Column("id", int),
                    Column("name", str),
                    Column("value", float),
                ),
                primary_key="id",
            ),
        )
        self.mirror: dict[int, dict] = {}

    @rule(key=keys, name=names, value=values)
    def insert(self, key, name, value):
        row = {"id": key, "name": name, "value": value}
        if key in self.mirror:
            try:
                self.table.insert(row)
                raise AssertionError("duplicate PK accepted")
            except ValueError:
                pass
        else:
            self.table.insert(row)
            self.mirror[key] = dict(row)

    @rule(key=keys)
    def delete(self, key):
        removed = self.table.delete(lambda r: r["id"] == key)
        expected = 1 if key in self.mirror else 0
        assert removed == expected
        self.mirror.pop(key, None)

    @rule(name=names, value=values)
    def update_by_name(self, name, value):
        updated = self.table.update(
            lambda r: r["name"] == name, {"value": value}
        )
        expected = [k for k, r in self.mirror.items() if r["name"] == name]
        assert updated == len(expected)
        for k in expected:
            self.mirror[k]["value"] = value

    @rule(key=keys)
    def lookup(self, key):
        if key in self.mirror:
            assert self.table.get(key) == self.mirror[key]
        else:
            try:
                self.table.get(key)
                raise AssertionError("missing PK returned a row")
            except KeyError:
                pass

    @rule()
    def select_all_matches_mirror(self):
        rows = {r["id"]: r for r in self.table.select()}
        assert rows == self.mirror

    @rule(key=keys)
    def mutating_returned_rows_is_safe(self, key):
        if key not in self.mirror:
            return
        row = self.table.get(key)
        row["value"] = -12345.0
        assert self.table.get(key) == self.mirror[key]

    @invariant()
    def length_consistent(self):
        assert len(self.table) == len(self.mirror)

    @invariant()
    def order_by_sorts(self):
        rows = self.table.select(order_by="value")
        values_sorted = [r["value"] for r in rows]
        assert values_sorted == sorted(values_sorted)


TestTableStateMachine = TableMachine.TestCase
