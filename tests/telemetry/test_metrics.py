"""Unit tests for the metric registry."""

from repro.telemetry import (
    MACHINE_ONLY_METRICS,
    PER_LEVEL_METRICS,
    MetricLevel,
    all_metric_names,
    all_metric_specs,
    metric_name,
)


class TestRegistryShape:
    def test_over_100_raw_metrics(self):
        # The paper collects 100+ raw metrics (§4.2).
        assert len(all_metric_names()) >= 100

    def test_two_level_collection(self):
        names = set(all_metric_names())
        for base, *_ in PER_LEVEL_METRICS:
            assert f"{base}-Machine" in names
            assert f"{base}-HP" in names

    def test_machine_only_metrics_have_no_hp_variant(self):
        names = set(all_metric_names())
        for base, *_ in MACHINE_ONLY_METRICS:
            assert base in names
            assert f"{base}-HP" not in names

    def test_no_duplicate_names(self):
        names = all_metric_names()
        assert len(names) == len(set(names))

    def test_total_count_consistent(self):
        expected = 2 * len(PER_LEVEL_METRICS) + len(MACHINE_ONLY_METRICS)
        assert len(all_metric_specs()) == expected


class TestSpecs:
    def test_levels_assigned(self):
        for spec in all_metric_specs():
            if spec.name.endswith("-Machine"):
                assert spec.level is MetricLevel.MACHINE
            elif spec.name.endswith("-HP"):
                assert spec.level is MetricLevel.HP
            else:
                assert spec.level is None

    def test_fraction_units_flagged(self):
        by_name = {s.name: s for s in all_metric_specs()}
        assert by_name["CPUUtil-Machine"].is_fraction
        assert by_name["LLC-MissRatio-HP"].is_fraction
        assert not by_name["MIPS-HP"].is_fraction

    def test_descriptions_and_categories_non_empty(self):
        known = {"performance", "cache", "topdown", "memory", "cpu", "io", "os", "temporal", "per-job"}
        for spec in all_metric_specs():
            assert spec.description
            assert spec.category in known

    def test_figure6_families_present(self):
        """The paper's Figure 6 metric families must all be covered."""
        names = set(all_metric_names())
        required = [
            "MIPS-HP",
            "IPC-Machine",
            "LLC-APKI-Machine",
            "LLC-APKI-HP",
            "LLC-MPKI-HP",
            "Branch-MPKI-Machine",
            "Topdown-FrontendBound-HP",
            "Topdown-BackendBound-Machine",
            "MemTotalGBps-Machine",
            "CPUUtil-Machine",
            "NetworkGbps-Machine",
            "DiskMBps-HP",
        ]
        for name in required:
            assert name in names

    def test_intentional_redundancies_present(self):
        """Refinement needs real duplicates to prune (§4.2)."""
        names = set(all_metric_names())
        assert "MemTotalBytesPerSec-Machine" in names  # rescale of GBps
        assert "LLC-HitRatio-Machine" in names  # 1 - miss ratio
        assert "LoadAverage" in names  # ≈ busy threads

    def test_metric_name_helper(self):
        assert metric_name("MIPS", MetricLevel.HP) == "MIPS-HP"
        assert metric_name("MIPS", MetricLevel.MACHINE) == "MIPS-Machine"
