"""Unit tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.telemetry import MeasurementNoise, all_metric_specs


@pytest.fixture()
def specs():
    return all_metric_specs()


class TestMeasurementNoise:
    def test_zero_sigma_is_identity(self, specs, rng):
        noise = MeasurementNoise(0.0, rng)
        values = np.linspace(0.0, 10.0, len(specs))
        out = noise.apply(values, specs)
        np.testing.assert_array_equal(out, values)
        assert out is not values  # a copy, caller's array untouched

    def test_noise_perturbs_values(self, specs, rng):
        noise = MeasurementNoise(0.05, rng)
        # 0.5 is in-range for fraction metrics, so no clipping happens and
        # the perturbation is purely the Gaussian factor.
        values = np.full(len(specs), 0.5)
        out = noise.apply(values, specs)
        assert not np.array_equal(out, values)
        # Relative perturbation is small.
        assert np.abs(out / values - 1.0).max() < 0.5

    def test_never_negative(self, specs, rng):
        noise = MeasurementNoise(2.0, rng)  # huge noise
        values = np.full(len(specs), 0.01)
        out = noise.apply(values, specs)
        assert (out >= 0.0).all()

    def test_fractions_clipped_to_one(self, specs, rng):
        noise = MeasurementNoise(0.5, rng)
        values = np.full(len(specs), 0.99)
        out = noise.apply(values, specs)
        for i, spec in enumerate(specs):
            if spec.is_fraction:
                assert out[i] <= 1.0

    def test_non_fractions_may_exceed_one(self, specs):
        rng = np.random.default_rng(0)
        noise = MeasurementNoise(0.3, rng)
        values = np.full(len(specs), 0.99)
        out = noise.apply(values, specs)
        non_frac = [i for i, s in enumerate(specs) if not s.is_fraction]
        assert (out[non_frac] > 1.0).any()

    def test_deterministic_for_seed(self, specs):
        values = np.full(len(specs), 5.0)
        a = MeasurementNoise(0.02, np.random.default_rng(3)).apply(values, specs)
        b = MeasurementNoise(0.02, np.random.default_rng(3)).apply(values, specs)
        np.testing.assert_array_equal(a, b)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            MeasurementNoise(-0.1, rng)

    def test_shape_mismatch_rejected(self, specs, rng):
        noise = MeasurementNoise(0.02, rng)
        with pytest.raises(ValueError, match="expected"):
            noise.apply(np.zeros(3), specs)
