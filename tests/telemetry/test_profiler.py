"""Unit tests for the Profiler (metric collection)."""

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.perfmodel import solve_colocation
from repro.telemetry import Database, Profiler, format_command, parse_command


@pytest.fixture()
def profiler():
    return Profiler(noise_sigma=0.0, seed=1)


class TestCommands:
    def test_round_trip(self, tiny_dataset):
        inst = tiny_dataset[0].instances[0]
        job, load = parse_command(format_command(inst))
        assert job == inst.signature.name
        assert load == pytest.approx(inst.load, abs=1e-4)

    def test_command_mentions_resources(self, tiny_dataset):
        cmd = format_command(tiny_dataset[0].instances[0])
        assert "--cpus 4" in cmd
        assert "docker run" in cmd

    def test_unparseable_command_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_command("docker run --cpus 4")


class TestCollect:
    def test_machine_metrics_cover_all_jobs(self, profiler, tiny_dataset):
        scenario = tiny_dataset[1]  # DC + mcf
        machine = tiny_dataset.shape.perf
        values = profiler.collect(scenario, tiny_dataset, machine)
        by_name = dict(zip(profiler.specs, values))
        named = {s.name: v for s, v in by_name.items()}
        sol = solve_colocation(machine, list(scenario.instances))
        assert named["MIPS-Machine"] == pytest.approx(sol.total_mips, rel=1e-6)
        assert named["MIPS-HP"] == pytest.approx(sol.hp_mips, rel=1e-6)
        assert named["MIPS-HP"] < named["MIPS-Machine"]

    def test_hp_metrics_zero_for_lp_only_scenario(self, profiler, tiny_dataset):
        scenario = tiny_dataset[3]  # sjeng + libquantum
        values = profiler.collect(
            scenario, tiny_dataset, tiny_dataset.shape.perf
        )
        named = {s.name: v for s, v in zip(profiler.specs, values)}
        assert named["MIPS-HP"] == 0.0
        assert named["ContainerCount-HP"] == 0.0
        assert named["MIPS-Machine"] > 0.0

    def test_container_and_vcpu_accounting(self, profiler, tiny_dataset):
        scenario = tiny_dataset[4]  # IA + MS + DS + omnetpp
        values = profiler.collect(
            scenario, tiny_dataset, tiny_dataset.shape.perf
        )
        named = {s.name: v for s, v in zip(profiler.specs, values)}
        assert named["ContainerCount-Machine"] == 4.0
        assert named["ContainerCount-HP"] == 3.0
        assert named["AllocatedVCPUs-Machine"] == 16.0
        assert named["FreeVCPUs"] == 32.0
        assert named["HPVCPUShare"] == pytest.approx(12.0 / 16.0)

    def test_fraction_metrics_in_unit_interval(self, profiler, tiny_dataset):
        for scenario in tiny_dataset.scenarios:
            values = profiler.collect(
                scenario, tiny_dataset, tiny_dataset.shape.perf
            )
            for spec, value in zip(profiler.specs, values):
                if spec.is_fraction:
                    assert 0.0 <= value <= 1.0 + 1e-9, spec.name

    def test_redundant_metrics_consistent(self, profiler, tiny_dataset):
        scenario = tiny_dataset[0]
        values = profiler.collect(
            scenario, tiny_dataset, tiny_dataset.shape.perf
        )
        named = {s.name: v for s, v in zip(profiler.specs, values)}
        assert named["MemTotalBytesPerSec-Machine"] == pytest.approx(
            named["MemTotalGBps-Machine"] * 1e9
        )
        assert named["LLC-HitRatio-HP"] == pytest.approx(
            1.0 - named["LLC-MissRatio-HP"]
        )
        assert named["CPI-Machine"] == pytest.approx(
            1.0 / named["IPC-Machine"]
        )


class TestProfile:
    def test_matrix_shape(self, profiler, tiny_dataset):
        profiled = profiler.profile(tiny_dataset)
        assert profiled.matrix.shape == (6, len(profiler.specs))
        assert profiled.n_scenarios == 6

    def test_all_finite(self, profiler, tiny_dataset):
        profiled = profiler.profile(tiny_dataset)
        assert np.isfinite(profiled.matrix).all()

    def test_feature_changes_metrics(self, tiny_dataset):
        profiler = Profiler(noise_sigma=0.0, seed=1)
        base = profiler.profile(tiny_dataset)
        small_cache = profiler.profile(tiny_dataset, feature=FEATURE_1_CACHE)
        assert (
            small_cache.column("LLC-MPKI-HP").sum()
            > base.column("LLC-MPKI-HP").sum()
        )

    def test_noise_reproducible(self, tiny_dataset):
        a = Profiler(noise_sigma=0.02, seed=9).profile(tiny_dataset)
        b = Profiler(noise_sigma=0.02, seed=9).profile(tiny_dataset)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_column_lookup(self, profiler, tiny_dataset):
        profiled = profiler.profile(tiny_dataset)
        col = profiled.column("MIPS-HP")
        assert col.shape == (6,)
        with pytest.raises(KeyError):
            profiled.column("NotAMetric")


class TestPersistence:
    def test_database_records_scenarios_and_samples(self, tiny_dataset):
        db = Database()
        profiler = Profiler(noise_sigma=0.0, seed=1, database=db)
        profiler.profile(tiny_dataset)
        scenarios = db.table("scenarios")
        samples = db.table("samples")
        assert len(scenarios) == 6
        assert len(samples) == 6 * len(profiler.specs)

    def test_recorded_commands_are_replayable(self, tiny_dataset):
        db = Database()
        Profiler(noise_sigma=0.0, seed=1, database=db).profile(tiny_dataset)
        row = db.table("scenarios").get(1)  # DC + mcf
        commands = row["commands"].split(";")
        parsed = [parse_command(c) for c in commands]
        assert ("DC", pytest.approx(0.85, abs=1e-3)) in [
            (j, pytest.approx(l, abs=1e-3)) for j, l in parsed
        ] or any(j == "DC" for j, _ in parsed)
        assert any(j == "mcf" for j, _ in parsed)

    def test_reprofiling_does_not_duplicate_scenarios(self, tiny_dataset):
        db = Database()
        profiler = Profiler(noise_sigma=0.0, seed=1, database=db)
        profiler.profile(tiny_dataset)
        profiler.profile(tiny_dataset)
        assert len(db.table("scenarios")) == 6
