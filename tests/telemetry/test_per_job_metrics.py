"""Unit tests for the per-job metric extension (paper §5.3)."""

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.telemetry import Profiler


class TestProfilerPerJobMetrics:
    @pytest.fixture(scope="class")
    def profiled(self, tiny_dataset):
        profiler = Profiler(
            noise_sigma=0.0, seed=1, per_job_metrics=("WSC", "DA")
        )
        return profiler.profile(tiny_dataset)

    def test_columns_appended(self, profiled):
        names = set(profiled.metric_names)
        for job in ("WSC", "DA"):
            assert f"InstanceCount-{job}" in names
            assert f"VCPUShare-{job}" in names

    def test_counts_match_scenarios(self, profiled, tiny_dataset):
        counts = profiled.column("InstanceCount-DA")
        expected = [s.count_of("DA") for s in tiny_dataset.scenarios]
        np.testing.assert_allclose(counts, expected)

    def test_vcpu_share(self, profiled, tiny_dataset):
        shares = profiled.column("VCPUShare-WSC")
        # Scenario 0: WSC + GA -> WSC holds 4 of 8 vCPUs.
        assert shares[0] == pytest.approx(0.5)
        # Scenario 5: WSC alone -> full share.
        assert shares[5] == pytest.approx(1.0)
        # Scenario 3 (LP-only): zero.
        assert shares[3] == 0.0

    def test_share_is_fraction_metric(self, profiled):
        spec = next(
            s for s in profiled.specs if s.name == "VCPUShare-WSC"
        )
        assert spec.is_fraction
        assert spec.category == "per-job"

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            Profiler(per_job_metrics=("WSC", "WSC"))

    def test_default_profiler_unchanged(self, tiny_dataset):
        default = Profiler(noise_sigma=0.0, seed=1).profile(tiny_dataset)
        assert not any("InstanceCount-" in n for n in default.metric_names)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def tuned(self, small_sim):
        config = FlareConfig(
            per_job_metrics=("WSC",),
            analyzer=AnalyzerConfig(n_clusters=8, kmeans_restarts=4),
        )
        return Flare(config).fit(small_sim.dataset)

    def test_fit_and_evaluate(self, tuned):
        estimate = tuned.evaluate_job(FEATURE_1_CACHE, "WSC")
        assert estimate.reduction_pct > 0.0

    def test_extra_metrics_in_feature_space(self, tuned):
        assert "InstanceCount-WSC" in tuned.profiled.metric_names

    def test_classification_uses_same_surface(self, tuned, small_sim):
        labels = tuned.classify_dataset(small_sim.dataset)
        agreement = (labels == tuned.analysis.labels).mean()
        assert agreement > 0.9

    def test_config_round_trips(self):
        from repro.io import config_from_dict, config_to_dict

        config = FlareConfig(per_job_metrics=("GA", "WSC"))
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.per_job_metrics == ("GA", "WSC")
