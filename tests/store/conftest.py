"""Fixtures for the sharded scenario store test suite."""

from __future__ import annotations

import pytest

from repro.cluster import DatacenterConfig, run_simulation
from repro.store import write_store


@pytest.fixture(scope="session")
def store_sim():
    """A small simulated datacenter shared by the store tests."""
    return run_simulation(
        DatacenterConfig(seed=7, target_unique_scenarios=60)
    )


@pytest.fixture(scope="session")
def store_dataset(store_sim):
    return store_sim.dataset


@pytest.fixture(scope="session")
def shared_store(store_dataset, tmp_path_factory):
    """The same scenarios written out as a 4-shard store (read-only)."""
    path = tmp_path_factory.mktemp("scenario-store") / "store"
    return write_store(store_dataset, path, shard_size=16)
