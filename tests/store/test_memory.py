"""Acceptance: out-of-core fitting keeps peak memory shard-bounded.

Fits the same pipeline over a store and over one 10x its size, with the
shard size and clustering reservoir held fixed.  If the streaming path
ever materialised a full metric/score matrix, the larger fit's traced
peak would grow by megabytes; instead the growth must stay a small
fraction of what the resident matrix would cost.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.cluster.machine import SMALL_SHAPE
from repro.cluster.scenario import Scenario
from repro.core import FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.core.streaming_fit import streaming_fit
from repro.perfmodel import RunningInstance
from repro.store import StoreWriter
from repro.workloads import HP_JOBS, LP_JOBS

SHARD_SIZE = 64
SAMPLE_CAPACITY = 256
CONFIG = FlareConfig(
    analyzer=AnalyzerConfig(
        n_clusters=6, kmeans_restarts=2, kmeans_max_iter=25
    )
)


def synthesise_store(n_scenarios: int, path):
    """Stream n cheap synthetic scenarios into a store at *path*."""
    catalogue = {**HP_JOBS, **LP_JOBS}
    names = sorted(catalogue)
    rng = np.random.default_rng(99)
    with StoreWriter(
        path, SMALL_SHAPE, shard_size=SHARD_SIZE, overwrite=True
    ) as writer:
        for i in range(n_scenarios):
            picks = rng.choice(
                len(names), size=int(rng.integers(1, 4)), replace=True
            )
            jobs = sorted(
                (names[j], round(float(rng.uniform(0.5, 1.0)), 2))
                for j in picks
            )
            counts: dict[str, int] = {}
            for name, _ in jobs:
                counts[name] = counts.get(name, 0) + 1
            writer.append(
                Scenario(
                    scenario_id=i,
                    key=tuple(sorted(counts.items())),
                    instances=tuple(
                        RunningInstance(
                            signature=catalogue[name], load=load
                        )
                        for name, load in jobs
                    ),
                    n_occurrences=1,
                    total_duration_s=float(rng.uniform(600.0, 7200.0)),
                )
            )
    return writer.store


def traced_fit_peak(store) -> int:
    tracemalloc.start()
    try:
        streaming_fit(store, CONFIG, sample_capacity=SAMPLE_CAPACITY)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.slow
class TestPeakMemoryFlatAt10x:
    def test_peak_delta_flat_under_10x_growth(self, tmp_path):
        n_small, n_large = 200, 2000
        small = synthesise_store(n_small, tmp_path / "small")
        large = synthesise_store(n_large, tmp_path / "large")
        assert large.n_shards == n_large // SHARD_SIZE + 1

        # Warm caches/imports outside the measured window.
        streaming_fit(small, CONFIG, sample_capacity=SAMPLE_CAPACITY)

        peak_small = traced_fit_peak(small)
        peak_large = traced_fit_peak(large)

        n_metrics = 102
        resident_matrix_bytes = n_large * n_metrics * 8
        # A resident pipeline would add >= one full matrix when the source
        # grows 10x; the streaming path must add a small fraction of it
        # (O(rows) label/weight vectors only).
        assert peak_large - peak_small < resident_matrix_bytes / 4
        # And in absolute terms the big fit stays below one full matrix.
        assert peak_large < resident_matrix_bytes
