"""Concurrent-writer safety for the store-backed solve memo.

Two process-pool workers evaluate overlapping scenario populations
against *one* memo directory at the same time.  The memo's append
discipline (atomic temp-file + rename segments named by their own
content digest, sidecar written last, merge-on-read) must guarantee:

* no lost entries — every key either worker solved is readable from
  the merged store afterwards;
* no conflicting duplicates — a key may land in two segments (both
  workers solved it before either flushed), but then the stored rows
  must be byte-identical, so merge order is irrelevant;
* bit-identical results — everything each worker returned, and
  everything a cold reader decodes afterwards, equals the serial
  memo-off solve exactly.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.perfmodel import MachinePerf, RunningInstance
from repro.perfmodel.batch import solve_colocation_many
from repro.perfmodel.memo import SolveMemo, solve_key
from repro.store.format import read_shard_array
from repro.workloads import HP_JOBS, LP_JOBS

_CATALOGUE = {**HP_JOBS, **LP_JOBS}

# Two overlapping halves of one fleet population: the middle mixes are
# solved by both workers, exercising the duplicate-segment case.
_MIXES = [
    (("WSC", 1.0), ("GA", 1.0)),
    (("DC", 0.85), ("mcf", 1.0)),
    (("DA", 1.0), ("DA", 0.7), ("WSV", 0.85)),
    (("sjeng", 1.0), ("libquantum", 1.0)),
    (("IA", 1.0), ("MS", 0.7), ("DS", 0.85), ("omnetpp", 1.0)),
    (("WSC", 0.7),),
    (("GA", 0.9), ("mcf", 0.6), ("WSC", 1.0)),
    (("DS", 1.0), ("DA", 0.5)),
]
_HALVES = (_MIXES[:5], _MIXES[3:])


def _build(mix):
    return [
        RunningInstance(signature=_CATALOGUE[name], load=load)
        for name, load in mix
    ]


def _evaluate_with_memo(spec: str, mixes) -> list:
    """Worker entry point: solve *mixes* against the shared memo."""
    population = [_build(mix) for mix in mixes]
    return solve_colocation_many(
        MachinePerf(), population, memo=SolveMemo(spec)
    )


def _segment_rows(memo_dir):
    """key -> set of stored row bytes, across every segment."""
    rows: dict[str, set[bytes]] = {}
    for sidecar_path in sorted(memo_dir.glob("seg-*.json")):
        sidecar = json.loads(sidecar_path.read_text())
        stem = sidecar_path.name[: -len(".json")]
        entries = read_shard_array(
            memo_dir / f"{stem}.entries.npy",
            expected_rows=sidecar["entries"],
            expected_digest=sidecar["entries_digest"],
        )
        instances = read_shard_array(
            memo_dir / f"{stem}.instances.npy",
            expected_rows=sidecar["instances"],
            expected_digest=sidecar["instances_digest"],
        )
        for entry in entries:
            start = int(entry["inst_offset"])
            stop = start + int(entry["inst_count"])
            blob = (
                np.ascontiguousarray(entry).tobytes()[64 + 8 :]
                + np.ascontiguousarray(instances[start:stop]).tobytes()
            )
            rows.setdefault(entry["key"].decode(), set()).add(blob)
    return rows


def test_concurrent_writers_share_one_store_without_conflicts(tmp_path):
    from tests.perfmodel.test_memo import assert_bit_identical

    memo_dir = tmp_path / "memo"
    spec = f"store:{memo_dir}"
    machine = MachinePerf()
    serial = {
        solve_key(machine, _build(mix)): solve_colocation_many(
            machine, [_build(mix)]
        )[0]
        for mix in _MIXES
    }

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(_evaluate_with_memo, spec, half) for half in _HALVES
        ]
        results = [future.result() for future in futures]

    # Workers returned the serial bits.
    for half, solutions in zip(_HALVES, results):
        for mix, solution in zip(half, solutions):
            key = solve_key(machine, _build(mix))
            assert_bit_identical(serial[key], solution, str(mix))

    # No lost entries: every solved key is in the merged store, and a
    # key written by both workers landed as byte-identical rows (the
    # offset differs per segment, so it is excluded from the blob).
    rows = _segment_rows(memo_dir)
    assert set(rows) == set(serial)
    for key, blobs in rows.items():
        assert len(blobs) == 1, f"conflicting stored rows for {key}"

    # A cold reader serves every entry from disk, bit-identically.
    reader = SolveMemo(spec)
    population = [_build(mix) for mix in _MIXES]
    served = solve_colocation_many(machine, population, memo=reader)
    assert reader.store_hits == len(_MIXES)
    assert reader.segments_written == 0
    for mix, solution in zip(_MIXES, served):
        key = solve_key(machine, _build(mix))
        assert_bit_identical(serial[key], solution, str(mix))


def test_process_evaluate_is_bit_identical_to_serial(tmp_path):
    # The replayer's worker shape: the same evaluate run entirely in a
    # child process against a warm store must reproduce the parent's
    # serial memo-off bits.
    from tests.perfmodel.test_memo import assert_bit_identical

    spec = f"store:{tmp_path / 'memo'}"
    machine = MachinePerf()
    population = [_build(mix) for mix in _MIXES]
    serial = solve_colocation_many(machine, population)

    with ProcessPoolExecutor(max_workers=1) as pool:
        warmup = pool.submit(_evaluate_with_memo, spec, _MIXES).result()
        warm = pool.submit(_evaluate_with_memo, spec, _MIXES).result()

    for index, reference in enumerate(serial):
        assert_bit_identical(reference, warmup[index], f"cold[{index}]")
        assert_bit_identical(reference, warm[index], f"warm[{index}]")
