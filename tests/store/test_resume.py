"""Acceptance: a streaming profile killed mid-run resumes identically.

Mirrors the runtime kill/resume chaos test, but through the store-backed
profiling path: a subprocess streams a sharded store through
``Profiler.profile`` under a checkpoint journal, SIGKILLs itself halfway
through the scenario batches, and a resumed invocation must complete from
the journal to the bit-identical metric matrix of an uninterrupted run.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

SRC_DIR = str(pathlib.Path(__file__).resolve().parents[2] / "src")


@pytest.mark.slow
class TestKillDuringStreamingProfile:
    def _run(self, store_path, journal_root, kill_at: int, out_path):
        script = textwrap.dedent(
            f"""
            import hashlib, json, os, sys
            sys.path.insert(0, {SRC_DIR!r})
            import repro.telemetry.profiler as profiler_mod
            from repro.obs import get_metrics
            from repro.runtime import SerialExecutor
            from repro.runtime.cache import CheckpointJournal
            from repro.store import open_store

            kill_at = int(sys.argv[1])
            calls = [0]
            original = profiler_mod._CollectBatchTask.__call__
            def counting(self, batch):
                calls[0] += 1
                if 0 <= kill_at < calls[0]:
                    os._exit(9)
                return original(self, batch)
            profiler_mod._CollectBatchTask.__call__ = counting

            store = open_store({str(store_path)!r})
            journal = CheckpointJournal({str(journal_root)!r}, "profile")
            executor = SerialExecutor(checkpoint=journal)
            profiled = profiler_mod.Profiler().profile(
                store, runtime=executor
            )
            hits = get_metrics().snapshot()["counters"].get(
                "checkpoint_hits_total", 0
            )
            json.dump(
                {{
                    "digest": hashlib.sha256(
                        profiled.matrix.tobytes()
                    ).hexdigest(),
                    "batches_executed": calls[0],
                    "hits": hits,
                }},
                open(sys.argv[2], "w"),
            )
            """
        )
        return subprocess.run(
            [sys.executable, "-c", script, str(kill_at), str(out_path)],
            capture_output=True,
            text=True,
        )

    def test_sigkill_mid_profile_then_resume(self, shared_store, tmp_path):
        journal_root = tmp_path / "journal"

        # First run dies after profiling half the store's shards.
        half = shared_store.n_shards // 2
        proc = self._run(
            shared_store.path, journal_root, half, tmp_path / "dead.json"
        )
        assert proc.returncode == 9, proc.stderr
        journaled = list((journal_root / "profile").glob("chunk-*.pkl"))
        assert len(journaled) == half

        # The resumed run completes, re-executing only the missing shards.
        proc = self._run(
            shared_store.path, journal_root, -1, tmp_path / "resumed.json"
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed["hits"] == half
        assert resumed["batches_executed"] == shared_store.n_shards - half

        # And the result is bit-identical to an uninterrupted control run.
        proc = self._run(
            shared_store.path,
            tmp_path / "fresh",
            -1,
            tmp_path / "control.json",
        )
        assert proc.returncode == 0, proc.stderr
        control = json.loads((tmp_path / "control.json").read_text())
        assert control["batches_executed"] == shared_store.n_shards
        assert resumed["digest"] == control["digest"]
