"""Zero-copy dispatch: transport equivalence and shared-memory hygiene.

The dispatch modes are pure transports — serial, pickled chunks,
shard-ref descriptors and shared-memory tables must all produce the
bit-identical metric matrix, with or without injected faults, and the
``shm`` mode must never leak a segment whatever the run's outcome.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.runtime import (
    FaultSpec,
    ProcessExecutor,
    ResilienceConfig,
    RetryPolicy,
    RuntimeConfig,
    SerialExecutor,
    active_shared_segments,
)
from repro.telemetry import Profiler


def _fast_retry(max_retries: int = 3) -> RetryPolicy:
    return RetryPolicy(
        max_retries=max_retries, backoff_base_s=0.0, backoff_jitter=0.0
    )


class TestDispatchEquivalence:
    def test_store_transports_bit_identical(self, shared_store):
        serial = Profiler().profile(shared_store).matrix

        with SerialExecutor() as pool:  # serial executor: pickle chunks
            pickled = Profiler().profile(shared_store, runtime=pool).matrix
        with ProcessExecutor(max_workers=2) as pool:  # auto: shardref
            auto = Profiler().profile(shared_store, runtime=pool).matrix
        explicit = Profiler().profile(
            shared_store,
            runtime=RuntimeConfig(executor="process:2", dispatch="shardref"),
        ).matrix

        np.testing.assert_array_equal(serial, pickled)
        np.testing.assert_array_equal(serial, auto)
        np.testing.assert_array_equal(serial, explicit)

    def test_in_memory_transports_bit_identical(self, store_dataset):
        inline = Profiler().profile(store_dataset).matrix
        shm = Profiler().profile(
            store_dataset,
            runtime=RuntimeConfig(executor="process:2", dispatch="shm"),
        ).matrix
        pickled = Profiler().profile(
            store_dataset,
            runtime=RuntimeConfig(executor="process:2", dispatch="pickle"),
        ).matrix

        np.testing.assert_array_equal(inline, shm)
        np.testing.assert_array_equal(inline, pickled)

    def test_chunk_size_does_not_change_results(self, shared_store):
        serial = Profiler().profile(shared_store).matrix
        chunked = Profiler().profile(
            shared_store,
            runtime=RuntimeConfig(executor="process:2", chunk_size=3),
        ).matrix
        np.testing.assert_array_equal(serial, chunked)

    def test_shardref_equivalent_under_fault_injection(self, shared_store):
        clean = Profiler().profile(shared_store).matrix
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(exception_rate=0.25, seed=13),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            chaotic = Profiler().profile(shared_store, runtime=pool).matrix
        np.testing.assert_array_equal(clean, chaotic)

    def test_shm_equivalent_under_fault_injection(self, store_dataset):
        clean = Profiler().profile(store_dataset).matrix
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(exception_rate=0.25, seed=17),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            chaotic = Profiler().profile(
                store_dataset,
                runtime=RuntimeConfig(executor=pool, dispatch="shm"),
            ).matrix
        np.testing.assert_array_equal(clean, chaotic)
        assert active_shared_segments() == ()


class TestSharedMemoryHygiene:
    def test_success_path_unlinks_segments(self, store_dataset):
        Profiler().profile(
            store_dataset,
            runtime=RuntimeConfig(executor="process:2", dispatch="shm"),
        )
        assert active_shared_segments() == ()

    def test_failure_path_unlinks_segments(self, store_dataset):
        res = ResilienceConfig(
            policy="fail_fast",
            faults=FaultSpec(exception_rate=1.0, seed=3),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            with pytest.raises(Exception):
                Profiler().profile(
                    store_dataset,
                    runtime=RuntimeConfig(executor=pool, dispatch="shm"),
                )
        assert active_shared_segments() == ()

    def test_pool_respawn_unlinks_segments(self, store_dataset):
        clean = Profiler().profile(store_dataset).matrix
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(crash_rate=0.10, seed=29),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            survived = Profiler().profile(
                store_dataset,
                runtime=RuntimeConfig(executor=pool, dispatch="shm"),
            ).matrix
        np.testing.assert_array_equal(clean, survived)
        assert active_shared_segments() == ()

    def test_shared_tables_refcount(self):
        from repro.runtime.dispatch import (
            SharedTables,
            attach_shared_tables,
        )
        from repro.store.format import INSTANCE_DTYPE, SCENARIO_DTYPE

        scenario_table = np.zeros(3, dtype=SCENARIO_DTYPE)
        instance_table = np.zeros(5, dtype=INSTANCE_DTYPE)
        instance_table["load"] = np.linspace(0.1, 0.9, 5)
        tables = SharedTables(scenario_table, instance_table)
        assert len(active_shared_segments()) == 2
        tables.acquire()
        tables.release()  # nested user: segments must survive
        assert len(active_shared_segments()) == 2

        attached_scn, attached_inst = attach_shared_tables(tables.ref)
        np.testing.assert_array_equal(attached_inst["load"], instance_table["load"])
        assert attached_scn.shape == scenario_table.shape

        tables.release()  # owner: now everything unlinks
        assert active_shared_segments() == ()
        with pytest.raises(RuntimeError):
            tables.acquire()


SRC_DIR = str(pathlib.Path(__file__).resolve().parents[2] / "src")


@pytest.mark.slow
class TestShardRefResume:
    """A parallel shard-ref profile killed mid-run resumes identically.

    Shard refs are pure content, so a resumed run rebuilds the same
    journal keys and restores the windows the killed run completed —
    through the zero-copy transport, not the pickle path test_resume
    exercises.
    """

    def _run(self, store_path, journal_root, kill_after: int, out_path):
        script = textwrap.dedent(
            f"""
            import hashlib, json, os, signal, sys
            sys.path.insert(0, {SRC_DIR!r})
            from repro.obs import get_metrics
            from repro.runtime import ProcessExecutor, RuntimeConfig
            from repro.store import open_store
            from repro.telemetry import Profiler

            kill_after = int(sys.argv[1])
            windows = [0]
            original = ProcessExecutor.map
            def dying(self, fn, items, **kwargs):
                out = original(self, fn, items, **kwargs)
                if kwargs.get("stage") == "profile":
                    windows[0] += 1
                    if 0 <= kill_after <= windows[0]:
                        # Completed chunks are journaled; die like a
                        # preempted job (workers first, no cleanup).
                        self._kill_pool()
                        os.kill(os.getpid(), signal.SIGKILL)
                return out
            ProcessExecutor.map = dying

            store = open_store({str(store_path)!r})
            runtime = RuntimeConfig(
                executor="process:2",
                dispatch="shardref",
                chunk_size=8,
                checkpoint_dir={str(journal_root)!r},
                resume=bool(int(sys.argv[3])),
            )
            profiled = Profiler().profile(store, runtime=runtime)
            hits = get_metrics().snapshot()["counters"].get(
                "checkpoint_hits_total", 0
            )
            json.dump(
                {{
                    "digest": hashlib.sha256(
                        profiled.matrix.tobytes()
                    ).hexdigest(),
                    "hits": int(hits),
                }},
                open(sys.argv[2], "w"),
            )
            """
        )
        return subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                str(kill_after),
                str(out_path),
                "1" if kill_after < 0 else "0",
            ],
            capture_output=True,
            text=True,
        )

    def test_sigkill_mid_profile_then_resume(self, shared_store, tmp_path):
        control = hashlib.sha256(
            Profiler().profile(shared_store).matrix.tobytes()
        ).hexdigest()
        journal_root = tmp_path / "journal"

        # First run dies after the first dispatch window (4 refs of 8
        # rows journaled out of 8).
        proc = self._run(
            shared_store.path, journal_root, 1, tmp_path / "dead.json"
        )
        assert proc.returncode == -9, proc.stderr
        journaled = list(journal_root.glob("*/chunk-*.pkl"))
        assert len(journaled) == 4

        # The resumed run restores those refs and completes.
        proc = self._run(
            shared_store.path, journal_root, -1, tmp_path / "resumed.json"
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed["hits"] == 4
        assert resumed["digest"] == control
