"""Out-of-core fitting: equivalence with the in-memory pipeline.

The acceptance contract of docs/store.md: on a smoke dataset the
store-backed streaming fit must reproduce the in-memory fit's pruning,
component count, cluster assignments and ranked representatives, and
the streaming path itself must be bit-identical across executors.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.runtime import ProcessExecutor
from repro.telemetry.profiler import Profiler


@pytest.fixture(scope="module")
def config() -> FlareConfig:
    return FlareConfig(analyzer=AnalyzerConfig(n_clusters=8))


@pytest.fixture(scope="module")
def memory_fit(store_dataset, config) -> Flare:
    return Flare(config).fit(store_dataset)


@pytest.fixture(scope="module")
def streaming_flare(shared_store, config) -> Flare:
    return Flare(config).fit(shared_store)


class TestProfilerStreaming:
    def test_matrix_matches_in_memory(self, store_dataset, shared_store):
        profiler = Profiler()
        resident = profiler.profile(store_dataset).matrix
        streamed = profiler.profile(shared_store).matrix
        np.testing.assert_array_equal(resident, streamed)

    def test_serial_process_bit_identical(self, shared_store):
        profiler = Profiler()
        serial = profiler.profile(shared_store).matrix
        with ProcessExecutor(max_workers=2) as pool:
            parallel = profiler.profile(shared_store, runtime=pool).matrix
        np.testing.assert_array_equal(serial, parallel)

    def test_iter_profile_covers_source_in_order(self, shared_store):
        profiler = Profiler()
        start = 0
        for batch in profiler.iter_profile(shared_store):
            assert batch.start_row == start
            assert batch.matrix.shape[0] == len(batch.dataset)
            start += len(batch.dataset)
        assert start == len(shared_store)

    def test_dataset_keyword_deprecated(self, store_dataset):
        profiler = Profiler()
        with pytest.warns(DeprecationWarning, match="dataset"):
            via_shim = profiler.profile(dataset=store_dataset)
        np.testing.assert_array_equal(
            via_shim.matrix, profiler.profile(store_dataset).matrix
        )


class TestStreamingFitEquivalence:
    def test_pruning_identical(self, memory_fit, streaming_flare):
        assert (
            streaming_flare.prune_report.kept
            == memory_fit.prune_report.kept
        )
        assert (
            streaming_flare.prune_report.dropped
            == memory_fit.prune_report.dropped
        )

    def test_component_count_identical(self, memory_fit, streaming_flare):
        assert (
            streaming_flare.analysis.n_components
            == memory_fit.analysis.n_components
        )

    def test_cluster_assignments_identical(self, memory_fit, streaming_flare):
        np.testing.assert_array_equal(
            streaming_flare.analysis.kmeans.labels,
            memory_fit.analysis.kmeans.labels,
        )

    def test_cluster_weights_match(self, memory_fit, streaming_flare):
        np.testing.assert_allclose(
            streaming_flare.analysis.cluster_weights,
            memory_fit.analysis.cluster_weights,
            rtol=1e-9,
        )

    def test_representatives_identical(self, memory_fit, streaming_flare):
        mem = {
            g.cluster_id: g.ranked_members
            for g in memory_fit.representatives.groups
        }
        stream = {
            g.cluster_id: g.ranked_members
            for g in streaming_flare.representatives.groups
        }
        assert stream == mem

    def test_impact_estimates_identical(self, memory_fit, streaming_flare):
        from repro.cluster import FEATURE_1_CACHE

        mem = memory_fit.evaluate(FEATURE_1_CACHE)
        stream = streaming_flare.evaluate(FEATURE_1_CACHE)
        assert stream.reduction_pct == mem.reduction_pct

    def test_classify_matches_labels(self, streaming_flare, store_dataset):
        labels = streaming_flare.classify_dataset(store_dataset)
        np.testing.assert_array_equal(
            labels, streaming_flare.analysis.kmeans.labels
        )


class TestStreamingDeterminism:
    def test_serial_process_fits_bit_identical(self, shared_store, config):
        serial = Flare(config).fit(shared_store)
        with ProcessExecutor(max_workers=2) as pool:
            parallel = Flare(config).fit(shared_store, runtime=pool)
        np.testing.assert_array_equal(
            serial.analysis.kmeans.centroids,
            parallel.analysis.kmeans.centroids,
        )
        np.testing.assert_array_equal(
            serial.analysis.kmeans.labels, parallel.analysis.kmeans.labels
        )
        np.testing.assert_array_equal(
            serial.analysis.score_mean, parallel.analysis.score_mean
        )


class TestOutOfCoreSurface:
    def test_refined_matrix_unavailable_with_guidance(self, streaming_flare):
        with pytest.raises(RuntimeError, match="out-of-core"):
            streaming_flare.refined

    def test_diagnose_unavailable_with_guidance(self, streaming_flare):
        from repro.core.diagnostics import diagnose

        with pytest.raises(ValueError, match="in memory"):
            diagnose(streaming_flare)

    def test_scores_none_but_whitening_present(self, streaming_flare):
        assert streaming_flare.analysis.scores is None
        assert streaming_flare.analysis.score_mean.ndim == 1

    def test_fit_dataset_keyword_deprecated(self, store_dataset, config):
        with pytest.warns(DeprecationWarning, match="dataset"):
            flare = Flare(config).fit(dataset=store_dataset)
        assert flare.analysis.n_clusters == 8


class TestApproximatePath:
    def test_sample_smaller_than_source_still_fits(self, shared_store):
        from repro.core.streaming_fit import streaming_fit

        result = streaming_fit(
            shared_store,
            FlareConfig(analyzer=AnalyzerConfig(n_clusters=5)),
            sample_capacity=30,
        )
        assert result.n_scenarios == len(shared_store)
        assert result.analysis.kmeans.labels.shape == (len(shared_store),)
        assert result.analysis.kmeans.centroids.shape[0] == 5

    def test_weight_samples_guard(self, shared_store):
        from repro.core.streaming_fit import streaming_fit

        config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=5, weight_samples=True)
        )
        with pytest.raises(ValueError, match="sample_capacity"):
            streaming_fit(shared_store, config, sample_capacity=30)


class TestBaselinesAcceptStores:
    def test_full_datacenter_truth_identical(
        self, store_dataset, shared_store
    ):
        from repro.baselines import evaluate_full_datacenter
        from repro.cluster import FEATURE_1_CACHE

        resident = evaluate_full_datacenter(store_dataset, FEATURE_1_CACHE)
        streamed = evaluate_full_datacenter(shared_store, FEATURE_1_CACHE)
        assert streamed.scenario_ids == resident.scenario_ids
        np.testing.assert_array_equal(
            streamed.reductions_pct, resident.reductions_pct
        )
        np.testing.assert_array_equal(streamed.weights, resident.weights)

    def test_stratified_sampling_accepts_store(
        self, store_dataset, shared_store
    ):
        from repro.baselines import evaluate_by_stratified_sampling
        from repro.cluster import FEATURE_1_CACHE

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation on the new path
            resident = evaluate_by_stratified_sampling(
                store_dataset, FEATURE_1_CACHE, sample_size=10, n_trials=20
            )
            streamed = evaluate_by_stratified_sampling(
                shared_store, FEATURE_1_CACHE, sample_size=10, n_trials=20
            )
        np.testing.assert_array_equal(
            streamed.trials.estimates, resident.trials.estimates
        )
