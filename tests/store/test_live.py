"""Live (continuously appendable) store: generations, tailing, safety.

The fleet-mode ingestion contract (``repro.store.live``): each
``LiveStore.commit()`` publishes a complete generation atomically, an
open reader picks new generations up via ``refresh()`` without ever
observing a torn state, and every shard — old or new — stays digest
verified on read.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster.machine import DEFAULT_SHAPE
from repro.store import (
    LiveStore,
    ShardedScenarioStore,
    StoreCorruptionError,
    StoreError,
    StoreSlice,
    TailingSource,
)

from ..conftest import make_scenario

JOBS = ["WSC", "DC", "DA", "GA", "mcf", "sjeng", "libquantum", "omnetpp"]


def scenario(i: int):
    return make_scenario(
        i,
        [(JOBS[i % len(JOBS)], 0.5 + (i % 5) / 10)],
        duration_s=600.0 + 60.0 * i,
    )


class TestLiveStore:
    def test_commit_publishes_generations(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=4)
        live.extend(scenario(i) for i in range(6))
        assert live.commit() == 1
        assert live.watermark == 6
        live.extend(scenario(i) for i in range(6, 9))
        assert live.commit() == 2
        reader = live.reader()
        assert len(reader) == 9
        assert reader.manifest["generation"] == 2
        assert reader.manifest["watermark"] == 9
        live.close()

    def test_empty_commit_is_noop_after_first(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE)
        live.append(scenario(0))
        live.append(scenario(1))
        assert live.commit() == 1
        assert live.commit() == 1

    def test_partial_shard_is_flushed_per_generation(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=100)
        live.extend(scenario(i) for i in range(3))
        live.commit()
        assert len(live.reader()) == 3

    def test_context_manager_commits_on_clean_exit_only(self, tmp_path):
        with pytest.raises(RuntimeError):
            with LiveStore(tmp_path / "dead", DEFAULT_SHAPE) as live:
                live.append(scenario(0))
                raise RuntimeError("boom")
        with pytest.raises(StoreError):
            ShardedScenarioStore.open(tmp_path / "dead")

        with LiveStore(tmp_path / "ok", DEFAULT_SHAPE) as live:
            live.extend(scenario(i) for i in range(2))
        assert len(ShardedScenarioStore.open(tmp_path / "ok")) == 2

    def test_closed_store_refuses_appends(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE)
        live.append(scenario(0))
        live.close()
        with pytest.raises(StoreError):
            live.append(scenario(1))


class TestRefresh:
    def test_refresh_picks_up_new_generations(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=4)
        live.extend(scenario(i) for i in range(5))
        live.commit()
        reader = ShardedScenarioStore.open(tmp_path / "s")
        assert len(reader) == 5

        live.extend(scenario(i) for i in range(5, 11))
        live.commit()
        assert reader.refresh() == 6
        assert len(reader) == 11
        assert reader[10].scenario_id == 10
        assert reader.refresh() == 0
        live.close()

    def test_refresh_rejects_rewritten_prefix(self, tmp_path):
        with LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=2) as live:
            live.extend(scenario(i) for i in range(4))
        reader = ShardedScenarioStore.open(tmp_path / "s")
        # Rewriting the store in place (new content, same path) must be
        # caught: the known shard prefix no longer matches.
        with LiveStore(
            tmp_path / "s", DEFAULT_SHAPE, shard_size=2, overwrite=True
        ) as live:
            live.extend(scenario(i) for i in range(10, 14))
        with pytest.raises(StoreCorruptionError):
            reader.refresh()

    def test_new_shards_are_digest_verified_on_read(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=4)
        live.extend(scenario(i) for i in range(4))
        live.commit()
        reader = ShardedScenarioStore.open(tmp_path / "s")
        assert reader[0].scenario_id == 0

        live.extend(scenario(i) for i in range(4, 8))
        live.commit()
        live.close()
        reader.refresh()
        # Tamper with the newly appended shard: reading any of its rows
        # must fail digest verification, not return corrupt scenarios.
        entry = reader.shard_entries[-1]
        shard_file = reader.path / f"{entry['name']}.scenarios.npy"
        blob = bytearray(shard_file.read_bytes())
        blob[-1] ^= 0xFF
        shard_file.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError):
            reader[7]


class TestStoreSlice:
    @pytest.fixture()
    def store(self, tmp_path):
        with LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=3) as live:
            live.extend(scenario(i) for i in range(10))
        return ShardedScenarioStore.open(tmp_path / "s")

    def test_slice_views_rows(self, store):
        view = StoreSlice(store, 4, 9)
        assert len(view) == 5
        assert [s.scenario_id for s in (view[0], view[4])] == [4, 8]
        ids = [
            s.scenario_id
            for batch in view.iter_batches()
            for s in batch.scenarios
        ]
        assert ids == [4, 5, 6, 7, 8]

    def test_slice_weights_normalise_over_slice(self, store):
        view = StoreSlice(store, 2, 6)
        assert view.weights().sum() == pytest.approx(1.0)
        assert view.durations().shape == (4,)

    def test_slice_digest_is_content_addressed(self, store, tmp_path):
        # Same logical rows under different physical shard boundaries
        # must digest identically.
        with LiveStore(
            tmp_path / "other", DEFAULT_SHAPE, shard_size=7
        ) as live:
            live.extend(scenario(i) for i in range(10))
        other = ShardedScenarioStore.open(tmp_path / "other")
        assert (
            StoreSlice(store, 3, 9).digest()
            == StoreSlice(other, 3, 9).digest()
        )
        assert (
            StoreSlice(store, 0, 5).digest()
            != StoreSlice(store, 0, 6).digest()
        )

    def test_out_of_range_slice_rejected(self, store):
        with pytest.raises(ValueError):
            StoreSlice(store, 5, 11)


class TestTailingSource:
    def test_tail_tracks_growth(self, tmp_path):
        live = LiveStore(tmp_path / "s", DEFAULT_SHAPE, shard_size=4)
        live.extend(scenario(i) for i in range(4))
        live.commit()
        tail = TailingSource(tmp_path / "s")
        assert tail.watermark == 4
        assert tail.generation == 1

        before = tail.watermark
        live.extend(scenario(i) for i in range(4, 9))
        live.commit()
        assert tail.refresh() == 5
        assert tail.generation == 2
        fresh = tail.new_since(before)
        assert [s.scenario_id for s in fresh] == [4, 5, 6, 7, 8]
        live.close()


class TestConcurrentAppendWhileRead:
    """A reader refreshing against a committing writer never tears."""

    N_GENERATIONS = 12
    ROWS_PER_GENERATION = 5

    def test_append_while_read_no_torn_state(self, tmp_path):
        path = tmp_path / "s"
        live = LiveStore(path, DEFAULT_SHAPE, shard_size=3)
        live.extend(scenario(i) for i in range(self.ROWS_PER_GENERATION))
        live.commit()
        reader = ShardedScenarioStore.open(path)

        valid_watermarks = {
            g * self.ROWS_PER_GENERATION
            for g in range(1, self.N_GENERATIONS + 1)
        }
        errors: list[BaseException] = []
        done = threading.Event()

        def writer():
            try:
                for gen in range(1, self.N_GENERATIONS):
                    start = gen * self.ROWS_PER_GENERATION
                    live.extend(
                        scenario(i)
                        for i in range(
                            start, start + self.ROWS_PER_GENERATION
                        )
                    )
                    live.commit()
                live.close()
            except BaseException as error:  # pragma: no cover - fail path
                errors.append(error)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            observed = [len(reader)]
            while not (
                done.is_set()
                and len(reader)
                == self.N_GENERATIONS * self.ROWS_PER_GENERATION
            ):
                reader.refresh()
                n = len(reader)
                # Every observed length is a committed watermark — a
                # torn manifest or half-visible shard batch would land
                # between generations.
                assert n in valid_watermarks, (n, sorted(valid_watermarks))
                if n != observed[-1]:
                    observed.append(n)
                # Reads across the whole visible range stay coherent
                # (digest-verified shards, position == scenario id).
                probe = np.random.default_rng(n).integers(0, n, size=3)
                for index in probe:
                    assert reader[int(index)].scenario_id == int(index)
        finally:
            thread.join(timeout=30)
        assert not errors, errors
        # Growth was monotone and ended at the final watermark.
        assert observed == sorted(observed)
        assert observed[-1] == self.N_GENERATIONS * self.ROWS_PER_GENERATION
        # The fully grown store digests identically to a one-shot write.
        with LiveStore(
            tmp_path / "control", DEFAULT_SHAPE, shard_size=3
        ) as control:
            control.extend(
                scenario(i)
                for i in range(
                    self.N_GENERATIONS * self.ROWS_PER_GENERATION
                )
            )
        assert (
            reader.digest()
            == ShardedScenarioStore.open(tmp_path / "control").digest()
        )
