"""Sharded columnar store: round-trips, corruption detection, compaction.

The store's contract is that the on-disk representation is a faithful,
verifiable encoding: decoding returns bit-identical scenarios, every
torn or tampered artefact is detected rather than silently decoded, and
compaction changes physical layout only.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import ScenarioDataset, ScenarioSource, run_simulation
from repro.cluster.simulation import DatacenterConfig
from repro.store import (
    ShardedScenarioStore,
    StoreCorruptionError,
    StoreError,
    StoreWriter,
    compact_store,
    open_store,
    write_store,
)


def assert_scenarios_identical(left, right) -> None:
    """Field-by-field scenario equality, floats compared bitwise."""
    assert left.scenario_id == right.scenario_id
    assert left.key == right.key
    assert left.n_occurrences == right.n_occurrences
    assert left.total_duration_s == right.total_duration_s
    assert len(left.instances) == len(right.instances)
    for a, b in zip(left.instances, right.instances):
        assert a.signature == b.signature
        assert a.load == b.load


class TestRoundTrip:
    def test_every_scenario_bit_identical(self, store_dataset, shared_store):
        reopened = open_store(shared_store.path)
        assert len(reopened) == len(store_dataset)
        for i in range(len(store_dataset)):
            assert_scenarios_identical(store_dataset[i], reopened[i])

    def test_to_dataset_round_trip(self, store_dataset, shared_store):
        back = shared_store.to_dataset()
        assert isinstance(back, ScenarioDataset)
        assert back.shape == store_dataset.shape
        np.testing.assert_array_equal(
            back.weights(), store_dataset.weights()
        )
        for a, b in zip(store_dataset.scenarios, back.scenarios):
            assert_scenarios_identical(a, b)

    def test_digest_matches_source_dataset(self, store_dataset, shared_store):
        assert shared_store.digest() == store_dataset.digest()

    def test_iter_batches_in_order_and_shard_bounded(self, shared_store):
        seen = []
        for batch in shared_store.iter_batches():
            assert len(batch) <= shared_store.shard_size
            seen.extend(s.scenario_id for s in batch.scenarios)
        assert seen == [
            shared_store[i].scenario_id for i in range(len(shared_store))
        ]

    def test_satisfies_scenario_source(self, store_dataset, shared_store):
        assert isinstance(shared_store, ScenarioSource)
        assert isinstance(store_dataset, ScenarioSource)

    def test_signatures_and_weights_survive(self, store_dataset, shared_store):
        assert set(shared_store.signatures) == set(store_dataset.signatures)
        np.testing.assert_array_equal(
            shared_store.weights(), store_dataset.weights()
        )

    def test_schema_matches_dataset_schema(self, store_dataset, shared_store):
        assert shared_store.schema() == store_dataset.schema()
        assert shared_store.manifest["total_rows"] == len(shared_store)


class TestStreamingSink:
    def test_sink_write_equals_materialised_write(self, tmp_path):
        config = DatacenterConfig(seed=11, target_unique_scenarios=30)
        with StoreWriter(
            tmp_path / "streamed", config.shape, shard_size=8
        ) as writer:
            result = run_simulation(config, sink=writer)
        assert result.dataset is None
        assert result.n_unique_scenarios == len(writer.store)

        resident = run_simulation(config).dataset
        direct = write_store(resident, tmp_path / "direct", shard_size=8)
        assert writer.store.digest() == direct.digest()

    def test_aborted_write_leaves_no_store(self, tmp_path, store_dataset):
        path = tmp_path / "torn"
        with pytest.raises(RuntimeError, match="mid-write"):
            with StoreWriter(path, store_dataset.shape, shard_size=8) as w:
                w.extend(store_dataset.scenarios[:20])
                raise RuntimeError("simulated crash mid-write")
        # Shards may exist, but without a manifest there is no store.
        with pytest.raises(StoreError, match="manifest"):
            open_store(path)

    def test_overwrite_guard(self, tmp_path, store_dataset):
        path = tmp_path / "once"
        write_store(store_dataset, path, shard_size=16)
        with pytest.raises(StoreError, match="overwrite"):
            write_store(store_dataset, path, shard_size=16)
        again = write_store(
            store_dataset, path, shard_size=16, overwrite=True
        )
        assert again.digest() == store_dataset.digest()


class TestCorruptionDetection:
    def _copy(self, store, tmp_path) -> ShardedScenarioStore:
        return write_store(store, tmp_path / "victim", shard_size=16)

    def test_flipped_byte_in_shard_detected(self, shared_store, tmp_path):
        victim = self._copy(shared_store, tmp_path)
        shard_file = sorted(victim.path.glob("*.scenarios.npy"))[1]
        raw = bytearray(shard_file.read_bytes())
        raw[-1] ^= 0xFF
        shard_file.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError, match="digest"):
            open_store(victim.path).verify()

    def test_truncated_shard_detected(self, shared_store, tmp_path):
        victim = self._copy(shared_store, tmp_path)
        shard_file = sorted(victim.path.glob("*.instances.npy"))[0]
        shard_file.write_bytes(shard_file.read_bytes()[:-40])
        with pytest.raises((StoreCorruptionError, ValueError)):
            open_store(victim.path).verify()

    def test_stale_manifest_row_count_detected(self, shared_store, tmp_path):
        victim = self._copy(shared_store, tmp_path)
        manifest_path = victim.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["total_rows"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError, match="total_rows"):
            open_store(victim.path)

    def test_stale_manifest_content_digest_detected(
        self, shared_store, tmp_path
    ):
        victim = self._copy(shared_store, tmp_path)
        manifest_path = victim.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["content_digest"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreCorruptionError, match="digest"):
            open_store(victim.path).verify()

    def test_unknown_format_version_rejected(self, shared_store, tmp_path):
        victim = self._copy(shared_store, tmp_path)
        manifest_path = victim.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="version"):
            open_store(victim.path)

    def test_missing_manifest_is_not_a_store(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StoreError, match="manifest"):
            open_store(tmp_path / "empty")


class TestCompaction:
    def test_compaction_preserves_content(self, shared_store, tmp_path):
        compacted = compact_store(
            shared_store, tmp_path / "bigger", shard_size=32
        )
        assert compacted.digest() == shared_store.digest()
        assert compacted.n_shards < shared_store.n_shards
        for i in range(len(shared_store)):
            assert_scenarios_identical(shared_store[i], compacted[i])

    def test_compaction_to_smaller_shards(self, shared_store, tmp_path):
        compacted = compact_store(
            shared_store, tmp_path / "smaller", shard_size=4
        )
        assert compacted.digest() == shared_store.digest()
        assert compacted.n_shards > shared_store.n_shards


class TestCompression:
    def test_zlib_round_trip_bit_identical(self, store_dataset, tmp_path):
        store = write_store(
            store_dataset, tmp_path / "z", shard_size=16, compression="zlib"
        )
        for i in range(len(store_dataset)):
            assert_scenarios_identical(store_dataset[i], store[i])

    def test_digest_is_codec_independent(
        self, store_dataset, shared_store, tmp_path
    ):
        # Shard digests cover the *uncompressed* array bytes, so the
        # logical content digest cannot depend on the codec.
        compressed = write_store(
            store_dataset, tmp_path / "z", shard_size=16, compression="zlib"
        )
        assert compressed.digest() == shared_store.digest()
        assert compressed.digest() == store_dataset.digest()
        compressed.verify()

    def test_manifest_records_compression(self, store_dataset, tmp_path):
        store = write_store(
            store_dataset, tmp_path / "z", shard_size=16, compression="zlib"
        )
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["compression"] == "zlib"
        assert all(
            shard["compression"] == "zlib" for shard in manifest["shards"]
        )

    def test_compressed_store_refuses_shard_refs(
        self, store_dataset, shared_store, tmp_path
    ):
        # Deflated shards are not mmap-able, so the zero-copy dispatch
        # path must be declined up front rather than failing downstream.
        compressed = write_store(
            store_dataset, tmp_path / "z", shard_size=16, compression="zlib"
        )
        assert shared_store.supports_shard_refs
        assert not compressed.supports_shard_refs
        with pytest.raises(StoreError, match="compress"):
            list(compressed.shard_refs())

    def test_corrupt_compressed_shard_detected(self, store_dataset, tmp_path):
        store = write_store(
            store_dataset, tmp_path / "z", shard_size=16, compression="zlib"
        )
        shard = sorted(store.path.glob("*.scenarios.npy"))[0]
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError):
            open_store(store.path).verify()

    def test_unknown_compression_rejected(self, store_dataset, tmp_path):
        with pytest.raises(StoreError, match="compression"):
            write_store(
                store_dataset, tmp_path / "x", compression="snappy"
            )

    def test_compaction_can_change_codec(
        self, store_dataset, shared_store, tmp_path
    ):
        compressed = compact_store(
            shared_store, tmp_path / "z", shard_size=16, compression="zlib"
        )
        assert compressed.digest() == shared_store.digest()
        back = compact_store(compressed, tmp_path / "raw", shard_size=16)
        assert back.supports_shard_refs
        assert back.digest() == shared_store.digest()


class TestWriteDurability:
    def test_no_temp_files_survive_a_finished_write(self, store_dataset, tmp_path):
        store = write_store(store_dataset, tmp_path / "s", shard_size=16)
        leftovers = [
            p for p in store.path.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_manifest_is_written_last(self, store_dataset, tmp_path):
        # The writer defers per-shard fsync to finalize(), which is only
        # safe because nothing references the shards until the manifest
        # lands: an interrupted write must not look like a store.
        writer = StoreWriter(
            tmp_path / "s", shape=store_dataset.shape, shard_size=16
        )
        writer.extend(store_dataset.scenarios)
        assert not (writer.path / "manifest.json").exists()
        assert any(writer.path.glob("*.npy"))
        writer.finalize()
        assert (writer.path / "manifest.json").exists()
