"""Unit tests for the sampling baseline."""

import numpy as np
import pytest

from repro.baselines import (
    evaluate_by_sampling,
    evaluate_full_datacenter,
    evaluate_job_by_sampling,
    sampling_cost_curve,
)
from repro.cluster import FEATURE_1_CACHE, FEATURE_2_DVFS


@pytest.fixture(scope="module")
def dataset(small_sim):
    return small_sim.dataset


@pytest.fixture(scope="module")
def truth(dataset):
    return evaluate_full_datacenter(dataset, FEATURE_1_CACHE)


class TestAllJobSampling:
    def test_estimates_target_the_truth(self, dataset, truth):
        sampling = evaluate_by_sampling(
            dataset,
            FEATURE_1_CACHE,
            sample_size=20,
            n_trials=500,
            seed=1,
            truth=truth,
        )
        assert sampling.truth == pytest.approx(truth.overall_reduction_pct)
        assert sampling.mean_estimate == pytest.approx(
            truth.overall_reduction_pct, abs=0.5
        )

    def test_more_samples_less_spread(self, dataset, truth):
        small = evaluate_by_sampling(
            dataset, FEATURE_1_CACHE, sample_size=5, n_trials=400,
            seed=2, truth=truth,
        )
        large = evaluate_by_sampling(
            dataset, FEATURE_1_CACHE, sample_size=80, n_trials=400,
            seed=2, truth=truth,
        )
        assert large.trials.estimates.std() < small.trials.estimates.std()

    def test_cost_recorded(self, dataset, truth):
        sampling = evaluate_by_sampling(
            dataset, FEATURE_1_CACHE, sample_size=18, n_trials=10,
            seed=0, truth=truth,
        )
        assert sampling.evaluation_cost == 18
        assert sampling.job_name is None

    def test_computes_truth_when_not_given(self, dataset, truth):
        sampling = evaluate_by_sampling(
            dataset, FEATURE_1_CACHE, sample_size=10, n_trials=10, seed=0
        )
        assert sampling.truth == pytest.approx(truth.overall_reduction_pct)


class TestPerJobSampling:
    def test_targets_per_job_truth(self, dataset, truth):
        sampling = evaluate_job_by_sampling(
            dataset, FEATURE_1_CACHE, "WSC", sample_size=18,
            n_trials=300, seed=3,
        )
        assert sampling.job_name == "WSC"
        assert sampling.truth == pytest.approx(truth.per_job["WSC"], abs=1e-9)

    def test_sample_size_capped_at_population(self, dataset):
        sampling = evaluate_job_by_sampling(
            dataset, FEATURE_1_CACHE, "WSC", sample_size=10_000,
            n_trials=5, seed=0,
        )
        hosting = len(dataset.scenarios_with_job("WSC"))
        assert sampling.evaluation_cost == hosting

    def test_unknown_job_raises(self, dataset):
        with pytest.raises(ValueError):
            evaluate_job_by_sampling(
                dataset, FEATURE_1_CACHE, "nope", sample_size=5, n_trials=2
            )


class TestCostCurve:
    def test_monotone_decreasing(self, truth):
        curve = sampling_cost_curve(truth, (10, 20, 40, 80))
        errors = [err for _, err in curve]
        assert errors == sorted(errors, reverse=True)

    def test_rows_carry_sizes(self, truth):
        curve = sampling_cost_curve(truth, (18, 36))
        assert [size for size, _ in curve] == [18, 36]

    def test_invalid_size_raises(self, truth):
        with pytest.raises(ValueError):
            sampling_cost_curve(truth, (0,))

    def test_theoretical_curve_tracks_empirical(self, dataset, truth):
        """The Fig-13 analytic expected-max error must approximate the
        empirically observed 95th-percentile error."""
        size = 20
        curve = sampling_cost_curve(truth, (size,))
        analytic = curve[0][1]
        empirical = evaluate_by_sampling(
            dataset, FEATURE_1_CACHE, sample_size=size, n_trials=2000,
            seed=5, truth=truth,
        ).trials.max_error_at_confidence(0.95)
        assert analytic == pytest.approx(empirical, rel=0.35)
