"""Unit tests for the conventional load-testing baseline."""

import pytest

from repro.baselines import load_test_all_jobs, load_test_job
from repro.cluster import BASELINE, FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.cluster.machine import DEFAULT_SHAPE, SMALL_SHAPE
from repro.workloads import HP_JOB_NAMES, HP_JOBS


class TestLoadTestJob:
    def test_populates_machine_with_instances(self):
        result = load_test_job(DEFAULT_SHAPE, HP_JOBS["GA"], FEATURE_1_CACHE)
        # 48 vCPUs / 4 per instance = 12, within DRAM budget for GA.
        assert result.n_instances == 12

    def test_dram_limits_instance_count(self):
        # DS requests 16 GB -> 256/16 = 16 by DRAM but 12 by vCPU.
        result = load_test_job(DEFAULT_SHAPE, HP_JOBS["DS"], FEATURE_1_CACHE)
        assert result.n_instances == 12
        # WSC requests 12 GB; on the small shape DRAM (128 GB) allows 10,
        # vCPUs (32/4) allow 8 -> 8.
        small = load_test_job(SMALL_SHAPE, HP_JOBS["WSC"], FEATURE_1_CACHE)
        assert small.n_instances == 8

    def test_feature_reduces_mips(self):
        result = load_test_job(DEFAULT_SHAPE, HP_JOBS["WSC"], FEATURE_2_DVFS)
        assert result.feature_mips < result.baseline_mips
        assert result.reduction_pct > 0.0

    def test_baseline_feature_is_zero_impact(self):
        result = load_test_job(DEFAULT_SHAPE, HP_JOBS["WSC"], BASELINE)
        assert result.reduction_pct == pytest.approx(0.0, abs=1e-9)

    def test_job_name_recorded(self):
        result = load_test_job(DEFAULT_SHAPE, HP_JOBS["DC"], FEATURE_1_CACHE)
        assert result.job_name == "DC"
        assert result.feature is FEATURE_1_CACHE

    def test_cache_sensitive_job_reacts_more_to_feature1(self):
        wsc = load_test_job(DEFAULT_SHAPE, HP_JOBS["WSC"], FEATURE_1_CACHE)
        ms = load_test_job(DEFAULT_SHAPE, HP_JOBS["MS"], FEATURE_1_CACHE)
        assert wsc.reduction_pct > ms.reduction_pct


class TestLoadTestAllJobs:
    def test_covers_all_hp_services(self):
        results = load_test_all_jobs(DEFAULT_SHAPE, FEATURE_1_CACHE)
        assert set(results) == set(HP_JOB_NAMES)
        for name, result in results.items():
            assert result.job_name == name

    def test_custom_catalogue(self):
        subset = {"WSC": HP_JOBS["WSC"]}
        results = load_test_all_jobs(
            DEFAULT_SHAPE, FEATURE_1_CACHE, jobs=subset
        )
        assert set(results) == {"WSC"}
