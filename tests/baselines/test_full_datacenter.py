"""Unit tests for the full-datacenter (truth) evaluation."""

import numpy as np
import pytest

from repro.baselines import (
    evaluate_full_datacenter,
    per_job_scenario_reductions,
)
from repro.cluster import BASELINE, FEATURE_1_CACHE, FEATURE_2_DVFS


class TestEvaluateFullDatacenter:
    def test_covers_only_hp_scenarios(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, FEATURE_1_CACHE)
        # Scenario 3 is LP-only and must be excluded.
        assert 3 not in truth.scenario_ids
        assert truth.evaluation_cost == 5

    def test_weights_normalised(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, FEATURE_1_CACHE)
        assert truth.weights.sum() == pytest.approx(1.0)

    def test_overall_within_scenario_range(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, FEATURE_2_DVFS)
        assert (
            truth.reductions_pct.min()
            <= truth.overall_reduction_pct
            <= truth.reductions_pct.max()
        )

    def test_baseline_feature_has_zero_impact(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, BASELINE)
        np.testing.assert_allclose(truth.reductions_pct, 0.0, atol=1e-9)

    def test_per_job_covers_hosted_jobs(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, FEATURE_1_CACHE)
        assert set(truth.per_job) == {
            "WSC", "GA", "DC", "DA", "WSV", "IA", "MS", "DS",
        }

    def test_lp_only_dataset_raises(self, tiny_dataset):
        from repro.cluster import ScenarioDataset

        lp_only = ScenarioDataset(
            shape=tiny_dataset.shape, scenarios=(tiny_dataset.scenarios[3],)
        )
        with pytest.raises(ValueError, match="no scenario with HP"):
            evaluate_full_datacenter(lp_only, FEATURE_1_CACHE)

    def test_features_have_positive_impact(self, tiny_dataset):
        for feature in (FEATURE_1_CACHE, FEATURE_2_DVFS):
            truth = evaluate_full_datacenter(tiny_dataset, feature)
            assert truth.overall_reduction_pct > 0.0


class TestPerJobScenarioReductions:
    def test_only_hosting_scenarios(self, tiny_dataset):
        pop = per_job_scenario_reductions(
            tiny_dataset, FEATURE_1_CACHE, "WSC"
        )
        assert set(pop.scenario_ids) == {0, 5}

    def test_weights_include_instance_count(self, tiny_dataset):
        pop = per_job_scenario_reductions(tiny_dataset, FEATURE_1_CACHE, "DA")
        # Only scenario 2 hosts DA (x2); weight normalises to 1.
        assert pop.scenario_ids == (2,)
        assert pop.weights[0] == pytest.approx(1.0)

    def test_mean_matches_truth_per_job(self, tiny_dataset):
        truth = evaluate_full_datacenter(tiny_dataset, FEATURE_1_CACHE)
        pop = per_job_scenario_reductions(tiny_dataset, FEATURE_1_CACHE, "WSC")
        assert pop.mean_reduction_pct == pytest.approx(
            truth.per_job["WSC"], abs=1e-9
        )

    def test_std_zero_for_single_scenario(self, tiny_dataset):
        pop = per_job_scenario_reductions(tiny_dataset, FEATURE_1_CACHE, "DA")
        assert pop.std_reduction_pct == pytest.approx(0.0, abs=1e-9)

    def test_unknown_job_raises(self, tiny_dataset):
        with pytest.raises(ValueError, match="no scenario hosts"):
            per_job_scenario_reductions(tiny_dataset, FEATURE_1_CACHE, "nope")
