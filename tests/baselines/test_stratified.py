"""Unit tests for the stratified-sampling baseline."""

import numpy as np
import pytest

from repro.baselines import (
    evaluate_by_sampling,
    evaluate_by_stratified_sampling,
    evaluate_full_datacenter,
    stratify_by_metric,
)
from repro.cluster import FEATURE_2_DVFS


class TestStratifyByMetric:
    def test_quantile_strata_balanced(self, rng):
        values = rng.normal(size=1000)
        strata = stratify_by_metric(values, 4)
        counts = np.bincount(strata)
        assert counts.size == 4
        assert counts.min() > 200

    def test_single_stratum(self, rng):
        strata = stratify_by_metric(rng.normal(size=10), 1)
        assert (strata == 0).all()

    def test_monotone_in_value(self, rng):
        values = np.sort(rng.normal(size=100))
        strata = stratify_by_metric(values, 5)
        assert (np.diff(strata) >= 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            stratify_by_metric(np.zeros(5), 0)
        with pytest.raises(ValueError):
            stratify_by_metric(np.zeros((2, 2)), 2)


class TestStratifiedSampling:
    @pytest.fixture(scope="class")
    def dataset(self, small_sim):
        return small_sim.dataset

    @pytest.fixture(scope="class")
    def truth(self, dataset):
        return evaluate_full_datacenter(dataset, FEATURE_2_DVFS)

    def test_unbiased(self, dataset, truth):
        result = evaluate_by_stratified_sampling(
            dataset,
            FEATURE_2_DVFS,
            sample_size=18,
            n_trials=600,
            seed=1,
            truth=truth,
        )
        assert result.mean_estimate == pytest.approx(
            truth.overall_reduction_pct, abs=0.5
        )

    def test_no_worse_than_naive_sampling(self, dataset, truth):
        """Stratification must not hurt (textbook result)."""
        naive = evaluate_by_sampling(
            dataset, FEATURE_2_DVFS, sample_size=18, n_trials=800,
            seed=2, truth=truth,
        )
        stratified = evaluate_by_stratified_sampling(
            dataset, FEATURE_2_DVFS, sample_size=18, n_trials=800,
            seed=2, truth=truth,
        )
        assert stratified.trials.estimates.std() <= (
            naive.trials.estimates.std() * 1.1
        )

    def test_mpki_stratification_works(self, dataset, truth):
        result = evaluate_by_stratified_sampling(
            dataset, FEATURE_2_DVFS, sample_size=18, n_trials=100,
            seed=3, stratify_on="hp_mpki", truth=truth,
        )
        assert result.evaluation_cost == 18

    def test_unknown_key_raises(self, dataset, truth):
        with pytest.raises(ValueError, match="unknown stratification"):
            evaluate_by_stratified_sampling(
                dataset, FEATURE_2_DVFS, sample_size=18, n_trials=5,
                seed=0, stratify_on="nope", truth=truth,
            )

    def test_sample_size_below_strata_raises(self, dataset, truth):
        with pytest.raises(ValueError, match=">= n_strata"):
            evaluate_by_stratified_sampling(
                dataset, FEATURE_2_DVFS, sample_size=3, n_trials=5,
                seed=0, n_strata=6, truth=truth,
            )

    def test_deterministic(self, dataset, truth):
        a = evaluate_by_stratified_sampling(
            dataset, FEATURE_2_DVFS, sample_size=12, n_trials=50,
            seed=9, truth=truth,
        )
        b = evaluate_by_stratified_sampling(
            dataset, FEATURE_2_DVFS, sample_size=12, n_trials=50,
            seed=9, truth=truth,
        )
        np.testing.assert_array_equal(a.trials.estimates, b.trials.estimates)
