"""Unit tests for the Table 3 job catalogue."""

import pytest

from repro.perfmodel import Priority
from repro.workloads import (
    HP_JOB_NAMES,
    HP_JOBS,
    LP_JOB_NAMES,
    LP_JOBS,
    all_jobs,
    get_job,
    hp_job,
    lp_job,
)


class TestCatalogueShape:
    def test_eight_hp_services(self):
        assert len(HP_JOBS) == 8
        assert set(HP_JOB_NAMES) == {
            "DA", "DC", "DS", "GA", "IA", "MS", "WSC", "WSV",
        }

    def test_six_lp_benchmarks(self):
        assert len(LP_JOBS) == 6
        assert set(LP_JOB_NAMES) == {
            "perlbench", "sjeng", "libquantum", "xalancbmk", "omnetpp", "mcf",
        }

    def test_all_instances_are_4_vcpu_containers(self):
        for sig in all_jobs().values():
            assert sig.vcpus == 4

    def test_priorities(self):
        for sig in HP_JOBS.values():
            assert sig.priority is Priority.HIGH
        for sig in LP_JOBS.values():
            assert sig.priority is Priority.LOW

    def test_names_match_keys(self):
        for name, sig in all_jobs().items():
            assert sig.name == name

    def test_no_name_collision_between_hp_and_lp(self):
        assert not set(HP_JOBS) & set(LP_JOBS)

    def test_lp_jobs_fully_active(self):
        for sig in LP_JOBS.values():
            assert sig.active_fraction == 1.0
            assert sig.network_bytes_per_instr == 0.0


class TestPersonalities:
    """The catalogue must exhibit the first-order traits the paper's
    workloads have — these drive every experiment's shape."""

    def test_mcf_is_most_memory_bound_lp(self):
        assert LP_JOBS["mcf"].llc_apki >= max(
            LP_JOBS[n].llc_apki for n in ("perlbench", "sjeng", "xalancbmk")
        )
        assert LP_JOBS["mcf"].mem_blocking_factor > 0.7

    def test_sjeng_is_compute_bound(self):
        assert LP_JOBS["sjeng"].llc_apki < 3.0

    def test_libquantum_is_streaming(self):
        assert LP_JOBS["libquantum"].mrc.floor > 0.5  # little cache reuse
        assert LP_JOBS["libquantum"].mem_blocking_factor < 0.3  # prefetchable

    def test_scale_out_services_are_frontend_heavy(self):
        # Clearing-the-Clouds: scale-out services have large instruction
        # working sets -> high frontend stall components.
        for name in ("DS", "WSC", "WSV"):
            assert HP_JOBS[name].frontend_cpi >= 0.3

    def test_network_services_have_network_traffic(self):
        for name in ("DC", "MS", "WSV", "WSC"):
            assert HP_JOBS[name].network_bytes_per_instr > 0.0

    def test_analytics_have_no_network_traffic(self):
        for name in ("GA", "IA"):
            assert HP_JOBS[name].network_bytes_per_instr == 0.0

    def test_cache_sensitivity_varies_widely(self):
        # Needed so Feature 1 produces heterogeneous impacts (Fig. 3b).
        half_caps = [sig.mrc.half_capacity_mb for sig in all_jobs().values()]
        assert max(half_caps) / min(half_caps) > 5.0


class TestLookups:
    def test_hp_job_lookup(self):
        assert hp_job("WSC").name == "WSC"

    def test_lp_job_lookup(self):
        assert lp_job("mcf").name == "mcf"

    def test_get_job_spans_both(self):
        assert get_job("WSC").priority is Priority.HIGH
        assert get_job("mcf").priority is Priority.LOW

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown HP job"):
            hp_job("nope")
        with pytest.raises(KeyError, match="unknown LP job"):
            lp_job("WSC")
        with pytest.raises(KeyError, match="unknown job"):
            get_job("nope")

    def test_all_jobs_is_a_copy(self):
        registry = all_jobs()
        registry.clear()
        assert len(all_jobs()) == 14
