"""End-to-end integration tests: the full paper workflow at reduced scale.

Simulate a datacenter → fit FLARE → evaluate the three features → compare
against the full-datacenter truth and the baselines.  These assert the
relationships the whole reproduction rests on.
"""

import numpy as np
import pytest

import repro
from repro.api import (
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
    PAPER_FEATURES,
    evaluate_by_sampling,
    evaluate_full_datacenter,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def truths(self, small_sim):
        return {
            f.name: evaluate_full_datacenter(small_sim.dataset, f)
            for f in PAPER_FEATURES
        }

    def test_flare_tracks_truth_for_all_features(self, small_flare, truths):
        # Tolerance is looser than the paper-scale experiments (which
        # assert < 1 %): this fixture runs at 120 scenarios / 8 clusters,
        # where group granularity is coarser.
        for feature in PAPER_FEATURES:
            estimate = small_flare.evaluate(feature)
            truth = truths[feature.name].overall_reduction_pct
            assert estimate.reduction_pct == pytest.approx(truth, abs=1.6)

    def test_flare_beats_equal_cost_sampling_expectation(
        self, small_flare, small_sim, truths
    ):
        """FLARE's representative choice must beat the *expected* error of
        random sampling at the same cost, for the feature with the widest
        per-scenario spread."""
        feature = FEATURE_2_DVFS
        truth = truths[feature.name]
        sampling = evaluate_by_sampling(
            small_sim.dataset,
            feature,
            sample_size=small_flare.analysis.n_clusters,
            n_trials=600,
            seed=11,
            truth=truth,
        )
        flare_err = abs(
            small_flare.evaluate(feature).reduction_pct
            - truth.overall_reduction_pct
        )
        assert flare_err < sampling.trials.errors().mean()

    def test_feature_ordering_preserved(self, small_flare, truths):
        """Whatever the truth says about which feature hurts most, FLARE
        must agree (the deployment decision it informs)."""
        truth_order = sorted(
            PAPER_FEATURES,
            key=lambda f: truths[f.name].overall_reduction_pct,
        )
        flare_order = sorted(
            PAPER_FEATURES,
            key=lambda f: small_flare.evaluate(f).reduction_pct,
        )
        assert [f.name for f in truth_order] == [f.name for f in flare_order]

    def test_evaluation_cost_fraction(self, small_flare, small_sim):
        estimate = small_flare.evaluate(FEATURE_1_CACHE)
        assert estimate.evaluation_cost <= 8
        assert len(small_sim.dataset) / estimate.evaluation_cost >= 10.0

    def test_per_job_estimates_reasonable(self, small_flare, truths):
        truth = truths[FEATURE_1_CACHE.name]
        for job in ("WSC", "GA", "IA"):
            estimate = small_flare.evaluate_job(FEATURE_1_CACHE, job)
            assert estimate.reduction_pct == pytest.approx(
                truth.per_job[job], abs=2.0
            )

    def test_smt_feature_small_but_nonzero(self, truths):
        truth = truths[FEATURE_3_SMT.name].overall_reduction_pct
        assert truth > 0.0


class TestReproducibility:
    def test_full_pipeline_deterministic(self, tiny_dataset):
        from repro.api import Flare, FlareConfig
        from repro.core.analyzer import AnalyzerConfig

        config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2, seed=1)
        )
        a = Flare(config).fit(tiny_dataset).evaluate(FEATURE_1_CACHE)
        b = Flare(config).fit(tiny_dataset).evaluate(FEATURE_1_CACHE)
        assert a.reduction_pct == b.reduction_pct
        assert [c.scenario_id for c in a.per_cluster] == [
            c.scenario_id for c in b.per_cluster
        ]


class TestGovernorFeature:
    """End-to-end: a governor rollout (pure software policy change) is
    evaluated by FLARE like any Table 4 feature."""

    def test_ondemand_rollout_is_evaluable(self, small_flare, small_sim):
        from repro.cluster import Feature

        ondemand = Feature(
            name="ondemand-governor",
            description="switch to the ondemand DVFS governor",
            apply=lambda m: m.with_governor("ondemand"),
        )
        estimate = small_flare.evaluate(ondemand)
        truth = evaluate_full_datacenter(small_sim.dataset, ondemand)
        # The governor's impact is sharply nonlinear in occupancy and its
        # per-scenario spread is huge (0-50 %), so at this toy scale the
        # 8-cluster model only gets the ballpark; the paper-scale bench
        # (benchmarks/test_governor.py) asserts < 1 pp.  Here: right sign
        # and within one per-scenario standard deviation of the truth.
        assert estimate.reduction_pct > 0.0
        spread = float(truth.reductions_pct.std())
        assert abs(
            estimate.reduction_pct - truth.overall_reduction_pct
        ) < max(spread, 1.0)
