"""Unit tests for clustering-comparison metrics."""

import numpy as np
import pytest

from repro.stats import KMeans, adjusted_rand_index, gap_statistic


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabelling_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 4, size=3000)
        b = rng.integers(0, 4, size=3000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between_zero_and_one(self):
        a = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        b = np.array([0, 0, 1, 1, 1, 2, 2, 2, 0])
        ari = adjusted_rand_index(a, b)
        assert 0.0 < ari < 1.0

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 5, size=100)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_single_cluster_each(self):
        a = np.zeros(10, dtype=int)
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0, 1, 2])
        with pytest.raises(ValueError):
            adjusted_rand_index([0], [0])

    def test_kmeans_same_blobs_high_ari(self, rng):
        centres = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        pts = np.concatenate(
            [rng.normal(c, 0.3, size=(30, 2)) for c in centres]
        )
        a = KMeans(3, seed=1).fit(pts).labels
        b = KMeans(3, seed=99).fit(pts).labels
        assert adjusted_rand_index(a, b) > 0.95


class TestGapStatistic:
    def test_detects_three_blobs(self, rng):
        centres = np.array([[0.0, 0.0], [12.0, 0.0], [0.0, 12.0]])
        pts = np.concatenate(
            [rng.normal(c, 0.4, size=(40, 2)) for c in centres]
        )
        result = gap_statistic(pts, (1, 2, 3, 4, 5), seed=0, n_references=8)
        assert result.suggested_k() == 3

    def test_uniform_data_suggests_few_clusters(self, rng):
        pts = rng.uniform(0, 1, size=(150, 2))
        result = gap_statistic(pts, (1, 2, 3, 4), seed=0, n_references=8)
        assert result.suggested_k() <= 2

    def test_curve_shapes(self, rng):
        pts = rng.normal(size=(80, 3))
        result = gap_statistic(pts, (1, 2, 3), seed=0, n_references=4)
        assert result.gaps.shape == (3,)
        assert (result.std_errors >= 0.0).all()

    def test_deterministic(self, rng):
        pts = rng.normal(size=(60, 2))
        a = gap_statistic(pts, (2, 3), seed=5, n_references=4)
        b = gap_statistic(pts, (2, 3), seed=5, n_references=4)
        np.testing.assert_array_equal(a.gaps, b.gaps)

    def test_validation(self, rng):
        pts = rng.normal(size=(20, 2))
        with pytest.raises(ValueError):
            gap_statistic(pts, (), seed=0)
        with pytest.raises(ValueError):
            gap_statistic(pts, (0, 2), seed=0)
        with pytest.raises(ValueError):
            gap_statistic(pts, (2,), seed=0, n_references=1)
