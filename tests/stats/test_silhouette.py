"""Unit tests for SSE, silhouette, sweep and knee detection."""

import numpy as np
import pytest

from repro.stats import (
    KMeans,
    knee_point,
    silhouette_samples,
    silhouette_score,
    sum_squared_error,
    sweep_cluster_counts,
)


@pytest.fixture()
def two_blobs(rng):
    a = rng.normal([0.0, 0.0], 0.2, size=(30, 2))
    b = rng.normal([8.0, 8.0], 0.2, size=(30, 2))
    points = np.concatenate([a, b])
    labels = np.repeat([0, 1], 30)
    return points, labels


class TestSumSquaredError:
    def test_zero_when_points_equal_centroids(self):
        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        sse = sum_squared_error(points, points, [0, 1])
        assert sse == pytest.approx(0.0)

    def test_matches_manual(self):
        points = np.array([[0.0], [2.0], [10.0]])
        centroids = np.array([[1.0], [10.0]])
        sse = sum_squared_error(points, centroids, [0, 0, 1])
        assert sse == pytest.approx(1.0 + 1.0 + 0.0)

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError, match="does not exist"):
            sum_squared_error([[0.0]], [[0.0]], [3])


class TestSilhouette:
    def test_well_separated_blobs_near_one(self, two_blobs):
        points, labels = two_blobs
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_near_zero(self, rng):
        points = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_samples_in_range(self, two_blobs):
        points, labels = two_blobs
        samples = silhouette_samples(points, labels)
        assert (samples >= -1.0).all() and (samples <= 1.0).all()

    def test_singleton_cluster_scores_zero(self):
        points = np.array([[0.0], [0.1], [9.0]])
        samples = silhouette_samples(points, [0, 0, 1])
        assert samples[2] == pytest.approx(0.0)

    def test_single_cluster_raises(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="at least 2 clusters"):
            silhouette_score(points, np.zeros(10, dtype=int))

    def test_worse_labels_score_lower(self, two_blobs):
        points, labels = two_blobs
        good = silhouette_score(points, labels)
        # Swap half of blob A into cluster 1.
        bad_labels = labels.copy()
        bad_labels[:15] = 1
        assert silhouette_score(points, bad_labels) < good


class TestSweep:
    def test_records_all_counts(self, two_blobs):
        points, _ = two_blobs
        sweep = sweep_cluster_counts(
            points, (2, 3, 4), kmeans_factory=lambda k: KMeans(k, seed=0)
        )
        assert sweep.cluster_counts.tolist() == [2, 3, 4]
        assert sweep.sse.shape == (3,)
        assert sweep.silhouette.shape == (3,)

    def test_sse_decreases(self, two_blobs):
        points, _ = two_blobs
        sweep = sweep_cluster_counts(
            points, (2, 4, 8), kmeans_factory=lambda k: KMeans(k, seed=0, n_init=4)
        )
        assert (np.diff(sweep.sse) < 0.0).all()

    def test_true_k_has_best_silhouette(self, two_blobs):
        points, _ = two_blobs
        sweep = sweep_cluster_counts(
            points, (2, 3, 4, 5), kmeans_factory=lambda k: KMeans(k, seed=0)
        )
        assert int(sweep.cluster_counts[np.argmax(sweep.silhouette)]) == 2

    def test_rejects_k_below_two(self, two_blobs):
        points, _ = two_blobs
        with pytest.raises(ValueError, match=">= 2"):
            sweep_cluster_counts(
                points, (1, 2), kmeans_factory=lambda k: KMeans(k, seed=0)
            )

    def test_rejects_empty_counts(self, two_blobs):
        points, _ = two_blobs
        with pytest.raises(ValueError, match="non-empty"):
            sweep_cluster_counts(
                points, (), kmeans_factory=lambda k: KMeans(k, seed=0)
            )

    def test_as_rows(self, two_blobs):
        points, _ = two_blobs
        sweep = sweep_cluster_counts(
            points, (2, 3), kmeans_factory=lambda k: KMeans(k, seed=0)
        )
        rows = sweep.as_rows()
        assert len(rows) == 2
        assert rows[0][0] == 2


class TestKneePoint:
    def test_finds_sharp_elbow(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        y = np.array([100.0, 50.0, 10.0, 9.0, 8.5, 8.0])
        assert knee_point(x, y) == 2

    def test_linear_curve_has_no_strong_knee(self):
        x = np.arange(5.0)
        y = 10.0 - 2.0 * x
        # All points lie on the chord; distance 0 everywhere -> index 0.
        assert knee_point(x, y) == 0

    def test_rejects_short_input(self):
        with pytest.raises(ValueError, match="at least 3"):
            knee_point([1.0, 2.0], [1.0, 2.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            knee_point([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError, match="constant"):
            knee_point([1.0, 1.0, 1.0], [3.0, 2.0, 1.0])

    def test_flat_y_returns_valid_index(self):
        idx = knee_point([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])
        assert 0 <= idx <= 2
