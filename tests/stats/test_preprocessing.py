"""Unit tests for standardisation and whitening."""

import numpy as np
import pytest

from repro.stats import StandardScaler, whiten


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(200, 4))
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_becomes_zero(self):
        data = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out[:, 1], 0.0)

    def test_inverse_round_trip(self, rng):
        data = rng.normal(size=(50, 3)) * [1.0, 10.0, 100.0] + [0, 5, -2]
        scaler = StandardScaler()
        z = scaler.fit_transform(data)
        np.testing.assert_allclose(scaler.inverse_transform(z), data, atol=1e-9)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            StandardScaler().transform([[1.0]])

    def test_inverse_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            StandardScaler().inverse_transform([[1.0]])

    def test_column_count_mismatch_raises(self):
        scaler = StandardScaler().fit([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError, match="columns"):
            scaler.transform([[1.0]])

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit([[0.0], [2.0]])
        out = scaler.transform([[4.0]])
        # mean=1, std=1 -> (4-1)/1 = 3
        assert out[0, 0] == pytest.approx(3.0)

    def test_records_sample_count(self):
        scaler = StandardScaler().fit(np.zeros((7, 2)))
        assert scaler.n_samples_ == 7


class TestWhiten:
    def test_unit_variance_columns(self, rng):
        data = rng.normal(size=(100, 3)) * [1.0, 5.0, 0.1]
        out = whiten(data)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_zero_variance_column_stays_zero(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        out = whiten(data)
        np.testing.assert_allclose(out[:, 1], 0.0)

    def test_centres_data(self, rng):
        data = rng.normal(10.0, 2.0, size=(100, 2))
        out = whiten(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)

    def test_preserves_shape(self, rng):
        data = rng.normal(size=(10, 4))
        assert whiten(data).shape == (10, 4)
