"""Unit tests for correlation analysis and metric pruning."""

import numpy as np
import pytest

from repro.stats import correlation_matrix, prune_correlated


class TestCorrelationMatrix:
    def test_diagonal_is_one(self, rng):
        data = rng.normal(size=(100, 4))
        corr = correlation_matrix(data)
        np.testing.assert_allclose(np.diag(corr), 1.0, atol=1e-9)

    def test_symmetric(self, rng):
        corr = correlation_matrix(rng.normal(size=(50, 5)))
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)

    def test_perfect_positive_correlation(self, rng):
        x = rng.normal(size=100)
        data = np.column_stack([x, 2.0 * x + 5.0])
        corr = correlation_matrix(data)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_perfect_negative_correlation(self, rng):
        x = rng.normal(size=100)
        corr = correlation_matrix(np.column_stack([x, -x]))
        assert corr[0, 1] == pytest.approx(-1.0)

    def test_constant_column_zero_correlation(self, rng):
        data = np.column_stack([rng.normal(size=50), np.full(50, 3.0)])
        corr = correlation_matrix(data)
        assert corr[0, 1] == 0.0
        assert corr[1, 1] == 0.0

    def test_clipped_to_unit_interval(self, rng):
        corr = correlation_matrix(rng.normal(size=(30, 6)))
        assert (np.abs(corr) <= 1.0).all()


class TestPruneCorrelated:
    def test_drops_exact_duplicate(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        data = np.column_stack([x, y, x * 3.0])
        report = prune_correlated(data, threshold=0.95)
        assert report.n_kept == 2
        assert report.n_dropped == 1
        # The duplicate pair is (0, 2); exactly one of them survives.
        assert (0 in report.kept) != (2 in report.kept)
        assert 1 in report.kept

    def test_keeps_uncorrelated(self, rng):
        data = rng.normal(size=(500, 5))
        report = prune_correlated(data, threshold=0.95)
        assert report.n_kept == 5
        assert report.dropped == {}

    def test_dropped_maps_to_kept_metric(self, rng):
        x = rng.normal(size=100)
        data = np.column_stack([x, x * 2.0, x * -1.0])
        report = prune_correlated(data, threshold=0.9)
        assert report.n_kept == 1
        for dropped, keeper in report.dropped.items():
            assert keeper in report.kept
            assert dropped not in report.kept

    def test_threshold_one_keeps_near_duplicates(self, rng):
        x = rng.normal(size=300)
        noisy = x + rng.normal(0, 0.05, size=300)
        data = np.column_stack([x, noisy])
        assert prune_correlated(data, threshold=1.0).n_kept == 2
        assert prune_correlated(data, threshold=0.9).n_kept == 1

    def test_invalid_threshold_raises(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            prune_correlated(data, threshold=0.0)
        with pytest.raises(ValueError):
            prune_correlated(data, threshold=1.5)

    def test_kept_indices_sorted(self, rng):
        data = rng.normal(size=(100, 6))
        report = prune_correlated(data)
        assert list(report.kept) == sorted(report.kept)

    def test_kept_names_and_descriptions(self, rng):
        x = rng.normal(size=100)
        data = np.column_stack([x, x * 2.0])
        report = prune_correlated(data, threshold=0.9)
        names = ["alpha", "beta"]
        kept_names = report.kept_names(names)
        assert len(kept_names) == 1
        drops = report.describe_drops(names)
        assert len(drops) == 1
        assert "|r| >" in drops[0]

    def test_partition_is_complete(self, rng):
        data = rng.normal(size=(80, 7))
        data[:, 3] = data[:, 0] * 2.0
        report = prune_correlated(data)
        assert set(report.kept) | set(report.dropped) == set(range(7))
