"""Unit tests for distance kernels."""

import numpy as np
import pytest

from repro.stats import nearest_indices, pairwise_euclidean, pairwise_sq_euclidean


class TestPairwiseSqEuclidean:
    def test_matches_naive(self, rng):
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=(7, 4))
        out = pairwise_sq_euclidean(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out, naive, atol=1e-10)

    def test_self_distance_zero_diagonal(self, rng):
        a = rng.normal(size=(5, 3))
        out = pairwise_sq_euclidean(a, a)
        np.testing.assert_allclose(np.diag(out), 0.0, atol=1e-10)

    def test_never_negative(self, rng):
        a = rng.normal(size=(50, 2)) * 1e-8
        assert (pairwise_sq_euclidean(a, a) >= 0.0).all()

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            pairwise_sq_euclidean(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_shape(self, rng):
        out = pairwise_sq_euclidean(rng.normal(size=(3, 2)), rng.normal(size=(5, 2)))
        assert out.shape == (3, 5)


class TestPairwiseEuclidean:
    def test_is_sqrt_of_squared(self, rng):
        a = rng.normal(size=(6, 3))
        b = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            pairwise_euclidean(a, b) ** 2, pairwise_sq_euclidean(a, b), atol=1e-9
        )

    def test_triangle_inequality(self, rng):
        pts = rng.normal(size=(8, 3))
        d = pairwise_euclidean(pts, pts)
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestNearestIndices:
    def test_picks_exact_match(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        targets = np.array([[9.5, 0.1], [0.1, 0.2]])
        out = nearest_indices(points, targets)
        assert out.tolist() == [1, 0]

    def test_one_target(self):
        points = np.array([[0.0], [5.0]])
        assert nearest_indices(points, np.array([[4.0]])).tolist() == [1]
