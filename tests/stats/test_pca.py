"""Unit tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.stats import PCA, components_for_variance


@pytest.fixture()
def correlated_data(rng):
    """3 features, but only 2 underlying factors (third = linear combo)."""
    factors = rng.normal(size=(300, 2))
    col3 = factors[:, 0] * 0.5 + factors[:, 1] * 0.5
    return np.column_stack([factors, col3])


class TestPCAFit:
    def test_variance_ratios_sum_to_one(self, rng):
        data = rng.normal(size=(100, 5))
        pca = PCA().fit(data)
        assert pca.result_.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_ratios_are_descending(self, rng):
        data = rng.normal(size=(100, 6)) * np.arange(1, 7)
        ratios = PCA().fit(data).result_.explained_variance_ratio
        assert (np.diff(ratios) <= 1e-12).all()

    def test_components_are_orthonormal(self, rng):
        data = rng.normal(size=(80, 4))
        comps = PCA().fit(data).components_
        np.testing.assert_allclose(comps @ comps.T, np.eye(4), atol=1e-10)

    def test_rank_deficient_data_has_zero_tail_variance(self, correlated_data):
        pca = PCA().fit(correlated_data)
        assert pca.result_.explained_variance_ratio[-1] == pytest.approx(
            0.0, abs=1e-10
        )

    def test_n_components_limits_output(self, rng):
        data = rng.normal(size=(50, 5))
        pca = PCA(n_components=2).fit(data)
        assert pca.components_.shape == (2, 5)

    def test_n_components_too_large_raises(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            PCA(n_components=10).fit(rng.normal(size=(5, 4)))

    def test_invalid_n_components_raises(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            PCA().fit([[1.0, 2.0]])

    def test_sign_convention_dominant_loading_positive(self, rng):
        data = rng.normal(size=(100, 4))
        for row in PCA().fit(data).components_:
            assert row[np.argmax(np.abs(row))] > 0

    def test_deterministic_across_fits(self, rng):
        data = rng.normal(size=(60, 5))
        a = PCA().fit(data).components_
        b = PCA().fit(data).components_
        np.testing.assert_array_equal(a, b)


class TestPCATransform:
    def test_scores_have_variance_equal_to_eigenvalues(self, rng):
        data = rng.normal(size=(500, 4)) * [3.0, 2.0, 1.0, 0.5]
        pca = PCA().fit(data)
        scores = pca.transform(data)
        np.testing.assert_allclose(
            scores.var(axis=0, ddof=1),
            pca.result_.explained_variance,
            rtol=1e-8,
        )

    def test_round_trip_full_rank(self, rng):
        data = rng.normal(size=(40, 3))
        pca = PCA().fit(data)
        recon = pca.inverse_transform(pca.transform(data))
        np.testing.assert_allclose(recon, data, atol=1e-9)

    def test_truncated_reconstruction_error_bounded(self, correlated_data):
        pca = PCA(n_components=2).fit(correlated_data)
        recon = pca.inverse_transform(pca.transform(correlated_data))
        # Data has rank 2, so 2 components reconstruct exactly.
        np.testing.assert_allclose(recon, correlated_data, atol=1e-9)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            PCA().transform([[1.0, 2.0]])

    def test_feature_count_mismatch_raises(self, rng):
        pca = PCA().fit(rng.normal(size=(20, 3)))
        with pytest.raises(ValueError, match="features"):
            pca.transform([[1.0, 2.0]])

    def test_scores_column_mismatch_raises(self, rng):
        pca = PCA(n_components=2).fit(rng.normal(size=(20, 3)))
        with pytest.raises(ValueError, match="columns"):
            pca.inverse_transform([[1.0, 2.0, 3.0]])


class TestComponentsForVariance:
    def test_rank2_data_needs_two_components(self, correlated_data):
        assert components_for_variance(correlated_data, 0.999) == 2

    def test_full_target_reachable(self, rng):
        data = rng.normal(size=(50, 4))
        n = components_for_variance(data, 1.0)
        assert n == 4

    def test_small_target_needs_one(self, rng):
        data = rng.normal(size=(200, 3)) * [100.0, 1.0, 1.0]
        assert components_for_variance(data, 0.5) == 1

    def test_invalid_target_raises(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            components_for_variance(data, 0.0)
        with pytest.raises(ValueError):
            components_for_variance(data, 1.5)

    def test_monotone_in_target(self, rng):
        data = rng.normal(size=(100, 6)) * np.arange(1, 7)
        counts = [
            components_for_variance(data, t) for t in (0.5, 0.8, 0.95, 0.99)
        ]
        assert counts == sorted(counts)
