"""Unit tests for agglomerative clustering."""

import numpy as np
import pytest

from repro.stats import AgglomerativeClustering, KMeans, silhouette_score


@pytest.fixture()
def three_blobs(rng):
    centres = np.array([[0.0, 0.0], [9.0, 0.0], [0.0, 9.0]])
    points = np.concatenate([rng.normal(c, 0.3, size=(25, 2)) for c in centres])
    labels = np.repeat([0, 1, 2], 25)
    return points, labels


@pytest.mark.parametrize("linkage", ["average", "complete", "single"])
class TestLinkages:
    def test_recovers_blobs(self, three_blobs, linkage):
        points, truth = three_blobs
        result = AgglomerativeClustering(3, linkage=linkage).fit(points)
        for blob in range(3):
            assert np.unique(result.labels[truth == blob]).size == 1

    def test_labels_dense(self, three_blobs, linkage):
        points, _ = three_blobs
        result = AgglomerativeClustering(3, linkage=linkage).fit(points)
        assert sorted(np.unique(result.labels)) == [0, 1, 2]

    def test_centroids_are_cluster_means(self, three_blobs, linkage):
        points, _ = three_blobs
        result = AgglomerativeClustering(3, linkage=linkage).fit(points)
        for cid in range(3):
            member_mean = points[result.labels == cid].mean(axis=0)
            np.testing.assert_allclose(result.centroids[cid], member_mean)


class TestStructure:
    def test_n_clusters_one_merges_everything(self, three_blobs):
        points, _ = three_blobs
        result = AgglomerativeClustering(1).fit(points)
        assert np.unique(result.labels).size == 1
        assert len(result.merge_heights) == points.shape[0] - 1

    def test_n_clusters_equals_n_does_nothing(self, rng):
        points = rng.normal(size=(6, 2))
        result = AgglomerativeClustering(6).fit(points)
        assert np.unique(result.labels).size == 6
        assert result.merge_heights == ()

    def test_merge_heights_monotone_for_complete_linkage(self, three_blobs):
        points, _ = three_blobs
        result = AgglomerativeClustering(2, linkage="complete").fit(points)
        heights = np.array(result.merge_heights)
        assert (np.diff(heights) >= -1e-9).all()

    def test_inertia_positive_and_comparable_to_kmeans(self, three_blobs):
        points, _ = three_blobs
        agg = AgglomerativeClustering(3, linkage="average").fit(points)
        km = KMeans(3, seed=0).fit(points)
        # On clean blobs the partitions coincide, so SSE matches closely.
        assert agg.inertia == pytest.approx(km.inertia, rel=0.05)

    def test_silhouette_reasonable(self, three_blobs):
        points, _ = three_blobs
        result = AgglomerativeClustering(3).fit(points)
        assert silhouette_score(points, result.labels) > 0.8

    def test_deterministic(self, three_blobs):
        points, _ = three_blobs
        a = AgglomerativeClustering(4).fit(points)
        b = AgglomerativeClustering(4).fit(points)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(0)

    def test_unknown_linkage(self):
        with pytest.raises(ValueError, match="unknown linkage"):
            AgglomerativeClustering(2, linkage="ward")

    def test_k_exceeds_n(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            AgglomerativeClustering(5).fit(rng.normal(size=(3, 2)))

    def test_single_linkage_chains(self):
        """Single linkage merges through chains — a line of close points
        collapses into one cluster while a distant point stays alone."""
        line = np.array([[float(i), 0.0] for i in range(10)])
        outlier = np.array([[100.0, 0.0]])
        points = np.concatenate([line, outlier])
        result = AgglomerativeClustering(2, linkage="single").fit(points)
        assert np.unique(result.labels[:10]).size == 1
        assert result.labels[10] != result.labels[0]
