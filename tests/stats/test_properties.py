"""Property-based tests (hypothesis) for the statistics substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import (
    PCA,
    KMeans,
    StandardScaler,
    correlation_matrix,
    pairwise_sq_euclidean,
    prune_correlated,
    whiten,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def matrices(min_rows=2, max_rows=30, min_cols=1, max_cols=6):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda p: arrays(np.float64, (n, p), elements=finite_floats)
        )
    )


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_scaler_output_bounded_moments(data):
    out = StandardScaler().fit_transform(data)
    assert np.isfinite(out).all()
    assert np.all(np.abs(out.mean(axis=0)) < 1e-6)
    stds = out.std(axis=0)
    # Each column is either standardised or constant-zero.
    assert np.all((np.abs(stds - 1.0) < 1e-6) | (stds < 1e-12))


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_whiten_idempotent_on_live_columns(data):
    once = whiten(data)
    twice = whiten(once)
    np.testing.assert_allclose(once, twice, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_preserves_total_variance(data):
    pca = PCA().fit(data)
    total = data.var(axis=0, ddof=1).sum()
    recovered = pca.result_.explained_variance.sum()
    np.testing.assert_allclose(recovered, total, rtol=1e-6, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_full_reconstruction(data):
    pca = PCA().fit(data)
    recon = pca.inverse_transform(pca.transform(data))
    scale = max(1.0, np.abs(data).max())
    np.testing.assert_allclose(recon, data, atol=1e-6 * scale)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_correlation_matrix_bounded_and_symmetric(data):
    corr = correlation_matrix(data)
    assert (np.abs(corr) <= 1.0 + 1e-12).all()
    np.testing.assert_allclose(corr, corr.T, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(matrices(), st.floats(min_value=0.5, max_value=1.0, exclude_min=True))
def test_prune_partitions_columns(data, threshold):
    report = prune_correlated(data, threshold=threshold)
    all_cols = set(range(data.shape[1]))
    assert set(report.kept) | set(report.dropped) == all_cols
    assert set(report.kept) & set(report.dropped) == set()
    assert report.n_kept >= 1


@settings(max_examples=40, deadline=None)
@given(matrices(min_rows=2), matrices(min_rows=1))
def test_pairwise_distances_nonnegative(a, b):
    if a.shape[1] != b.shape[1]:
        b = np.zeros((b.shape[0], a.shape[1]))
    dist = pairwise_sq_euclidean(a, b)
    assert (dist >= 0.0).all()
    assert dist.shape == (a.shape[0], b.shape[0])


@settings(max_examples=20, deadline=None)
@given(
    matrices(min_rows=4, max_rows=25, min_cols=1, max_cols=3),
    st.integers(min_value=1, max_value=4),
)
def test_kmeans_invariants(data, k):
    k = min(k, data.shape[0])
    result = KMeans(k, seed=0, n_init=2, max_iter=50).fit(data)
    assert result.labels.shape == (data.shape[0],)
    assert result.labels.max() < k
    assert result.inertia >= 0.0
    # Every point's assigned centroid is its nearest centroid.
    dist = pairwise_sq_euclidean(data, result.centroids)
    np.testing.assert_array_equal(np.argmin(dist, axis=1), result.labels)
