"""Property-based tests (hypothesis) for the statistics substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import (
    PCA,
    KMeans,
    StandardScaler,
    correlation_matrix,
    pairwise_sq_euclidean,
    prune_correlated,
    whiten,
)
from repro.stats.silhouette import silhouette_samples, silhouette_score

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def matrices(min_rows=2, max_rows=30, min_cols=1, max_cols=6):
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda p: arrays(np.float64, (n, p), elements=finite_floats)
        )
    )


def grid_matrices(min_rows=6, max_rows=20, min_cols=1, max_cols=4):
    """Integer-valued float matrices.

    Pairwise squared distances between integer vectors are computed
    exactly in float64, so ratio-of-distance properties (silhouette)
    are rounding-stable: degenerate inputs give *exactly* zero
    distances instead of magnitude-dependent noise that would dominate
    the ratio.
    """
    elements = st.integers(min_value=-1000, max_value=1000).map(float)
    return st.integers(min_rows, max_rows).flatmap(
        lambda n: st.integers(min_cols, max_cols).flatmap(
            lambda p: arrays(np.float64, (n, p), elements=elements)
        )
    )


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_scaler_output_bounded_moments(data):
    scaler = StandardScaler()
    out = scaler.fit_transform(data)
    assert np.isfinite(out).all()
    assert np.all(np.abs(out.mean(axis=0)) < 1e-6)
    stds = out.std(axis=0)
    # Each column is either standardised or constant: a constant column
    # is centred but left unscaled, so its residual is float noise
    # *relative to the column magnitude* — the scaler's own
    # constant-column tolerance (values one ulp apart at 1e6 leave a
    # ~6e-11 residual that must not count as "not standardised").
    constant_tolerance = 1e-12 * np.maximum(1.0, np.abs(scaler.mean_))
    assert np.all(
        (np.abs(stds - 1.0) < 1e-6) | (stds <= constant_tolerance)
    )


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_whiten_idempotent_on_live_columns(data):
    once = whiten(data)
    twice = whiten(once)
    np.testing.assert_allclose(once, twice, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_preserves_total_variance(data):
    pca = PCA().fit(data)
    total = data.var(axis=0, ddof=1).sum()
    recovered = pca.result_.explained_variance.sum()
    np.testing.assert_allclose(recovered, total, rtol=1e-6, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_full_reconstruction(data):
    pca = PCA().fit(data)
    recon = pca.inverse_transform(pca.transform(data))
    scale = max(1.0, np.abs(data).max())
    np.testing.assert_allclose(recon, data, atol=1e-6 * scale)


@settings(max_examples=50, deadline=None)
@given(matrices())
def test_correlation_matrix_bounded_and_symmetric(data):
    corr = correlation_matrix(data)
    assert (np.abs(corr) <= 1.0 + 1e-12).all()
    np.testing.assert_allclose(corr, corr.T, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(matrices(), st.floats(min_value=0.5, max_value=1.0, exclude_min=True))
def test_prune_partitions_columns(data, threshold):
    report = prune_correlated(data, threshold=threshold)
    all_cols = set(range(data.shape[1]))
    assert set(report.kept) | set(report.dropped) == all_cols
    assert set(report.kept) & set(report.dropped) == set()
    assert report.n_kept >= 1


@settings(max_examples=40, deadline=None)
@given(matrices(min_rows=2), matrices(min_rows=1))
def test_pairwise_distances_nonnegative(a, b):
    if a.shape[1] != b.shape[1]:
        b = np.zeros((b.shape[0], a.shape[1]))
    dist = pairwise_sq_euclidean(a, b)
    assert (dist >= 0.0).all()
    assert dist.shape == (a.shape[0], b.shape[0])


@settings(max_examples=20, deadline=None)
@given(
    matrices(min_rows=4, max_rows=25, min_cols=1, max_cols=3),
    st.integers(min_value=1, max_value=4),
)
def test_kmeans_invariants(data, k):
    k = min(k, data.shape[0])
    result = KMeans(k, seed=0, n_init=2, max_iter=50).fit(data)
    assert result.labels.shape == (data.shape[0],)
    assert result.labels.max() < k
    assert result.inertia >= 0.0
    # Every point's assigned centroid is its nearest centroid.
    dist = pairwise_sq_euclidean(data, result.centroids)
    np.testing.assert_array_equal(np.argmin(dist, axis=1), result.labels)


# ----------------------------------------------------------------------
# K-means edge cases and equivariances
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, max_rows=20, min_cols=1, max_cols=4))
def test_kmeans_k1_centroid_is_the_mean(data):
    """k=1 collapses to the (unique) global mean, every label 0."""
    result = KMeans(1, n_init=1, seed=0).fit(data)
    scale = max(1.0, np.abs(data).max())
    np.testing.assert_allclose(
        result.centroids[0], data.mean(axis=0), atol=1e-9 * scale
    )
    assert (result.labels == 0).all()
    assert result.cluster_weights().sum() == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, max_rows=20, min_cols=1, max_cols=4))
def test_kmeans_k1_weighted_centroid_is_weighted_mean(data):
    weight = np.random.default_rng(0).uniform(0.1, 10.0, size=data.shape[0])
    result = KMeans(1, n_init=1, seed=0).fit(data, sample_weight=weight)
    expected = (data * weight[:, None]).sum(axis=0) / weight.sum()
    scale = max(1.0, np.abs(data).max())
    np.testing.assert_allclose(result.centroids[0], expected, atol=1e-9 * scale)


def _transported_inertia(data, centroids):
    return float(pairwise_sq_euclidean(data, centroids).min(axis=1).sum())


@settings(max_examples=25, deadline=None)
@given(
    matrices(min_rows=6, max_rows=20, min_cols=1, max_cols=4),
    st.integers(min_value=2, max_value=4),
)
def test_kmeans_translation_equivariance(data, k):
    """Translating the data translates the objective landscape.

    Fitting shifted data may land in a *different* local optimum: the
    k-means++ D² sampling probabilities are perturbed at float level by
    the shift, which can change the init and therefore the solution, so
    "same optimum" is not a stable property at large magnitudes.  What
    translation genuinely guarantees — exactly, in real arithmetic — is
    that a solution transported by the shift scores the same objective:
    inertia(X + s, C + s) == inertia(X, C).  The assume() guards shifts
    absorbed entirely by the data (13.25 + 1e-22 == 13.25 in float64).
    """
    shift = np.full(data.shape[1], 13.25)
    assume(np.array_equal((data + shift) - shift, data))
    base = KMeans(k, n_init=2, seed=3, max_iter=50).fit(data)
    moved = KMeans(k, n_init=2, seed=3, max_iter=50).fit(data + shift)
    scale = max(1.0, np.abs(data).max() + 13.25)
    tolerance = {"rtol": 1e-6, "atol": 1e-6 * scale**2}
    np.testing.assert_allclose(
        _transported_inertia(data + shift, base.centroids + shift),
        base.inertia,
        **tolerance,
    )
    np.testing.assert_allclose(
        _transported_inertia(data, moved.centroids - shift),
        moved.inertia,
        **tolerance,
    )


@settings(max_examples=25, deadline=None)
@given(matrices(min_rows=6, max_rows=20, min_cols=1, max_cols=4))
def test_kmeans_deterministic_under_fixed_seed(data):
    a = KMeans(3, n_init=2, seed=7, max_iter=50).fit(data)
    b = KMeans(3, n_init=2, seed=7, max_iter=50).fit(data)
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.centroids, b.centroids)


# ----------------------------------------------------------------------
# PCA ordering, permutation invariance and scale behaviour
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_variance_descends_and_ratio_bounded(data):
    result = PCA().fit(data).result_
    variance = result.explained_variance
    assert (variance[:-1] >= variance[1:] - 1e-9).all()
    ratio = result.explained_variance_ratio
    assert ((ratio >= -1e-12) & (ratio <= 1.0 + 1e-12)).all()


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_row_permutation_invariance(data):
    """Variance accounting ignores sample order."""
    perm = np.random.default_rng(1).permutation(data.shape[0])
    a = PCA().fit(data).result_
    b = PCA().fit(data[perm]).result_
    scale = max(1.0, (data**2).max())
    np.testing.assert_allclose(
        a.explained_variance, b.explained_variance, atol=1e-8 * scale
    )


@settings(max_examples=30, deadline=None)
@given(
    matrices(min_rows=3, min_cols=2),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_pca_scaling_scales_variance_quadratically(data, scale):
    a = PCA().fit(data).result_
    b = PCA().fit(data * scale).result_
    np.testing.assert_allclose(
        a.explained_variance * scale**2,
        b.explained_variance,
        rtol=1e-6,
        atol=1e-9,
    )


@settings(max_examples=30, deadline=None)
@given(matrices(min_rows=3, min_cols=2))
def test_pca_transform_centers_scores(data):
    scores = PCA().fit(data).transform(data)
    scale = max(1.0, np.abs(data).max())
    np.testing.assert_allclose(scores.mean(axis=0), 0.0, atol=1e-8 * scale)


# ----------------------------------------------------------------------
# Silhouette coefficient contracts
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    matrices(min_rows=6, max_rows=20, min_cols=1, max_cols=4),
    st.integers(min_value=2, max_value=3),
)
def test_silhouette_scores_bounded(data, k):
    labels = np.arange(data.shape[0]) % k
    scores = silhouette_samples(data, labels)
    assert ((scores >= -1.0 - 1e-12) & (scores <= 1.0 + 1e-12)).all()
    assert -1.0 - 1e-12 <= silhouette_score(data, labels) <= 1.0 + 1e-12


@settings(max_examples=25, deadline=None)
@given(grid_matrices())
def test_silhouette_permutation_invariance(data):
    """Reordering samples (with their labels) reorders the scores."""
    labels = np.arange(data.shape[0]) % 2
    perm = np.random.default_rng(2).permutation(data.shape[0])
    base = silhouette_samples(data, labels)
    moved = silhouette_samples(data[perm], labels[perm])
    np.testing.assert_allclose(base[perm], moved, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    grid_matrices(),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_silhouette_scale_invariance(data, scale):
    """Silhouette is a ratio of distances: uniform scaling cancels."""
    labels = np.arange(data.shape[0]) % 2
    base = silhouette_samples(data, labels)
    scaled = silhouette_samples(data * scale, labels)
    np.testing.assert_allclose(base, scaled, atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(matrices(min_rows=4, max_rows=12, min_cols=1, max_cols=3))
def test_silhouette_singleton_cluster_scores_zero(data):
    labels = np.zeros(data.shape[0], dtype=int)
    labels[0] = 1  # cluster 1 is a singleton: scores 0 by convention
    assert silhouette_samples(data, labels)[0] == 0.0


def test_silhouette_single_cluster_rejected():
    data = np.random.default_rng(0).normal(size=(6, 3))
    with pytest.raises(ValueError):
        silhouette_samples(data, np.zeros(6, dtype=int))
