"""Unit tests for array-validation helpers."""

import numpy as np
import pytest

from repro.stats.validation import (
    as_matrix,
    as_vector,
    check_finite,
    check_labels,
    check_random_state,
)


class TestAsMatrix:
    def test_accepts_list_of_lists(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            as_matrix([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            as_matrix(np.zeros((2, 2, 2)))

    def test_rejects_too_few_rows(self):
        with pytest.raises(ValueError, match="at least 2 row"):
            as_matrix([[1.0, 2.0]], min_rows=2)

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError, match="at least one column"):
            as_matrix(np.zeros((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_matrix([[1.0, np.inf]])

    def test_name_in_error_message(self):
        with pytest.raises(ValueError, match="mydata"):
            as_matrix([1.0], name="mydata")


class TestAsVector:
    def test_accepts_list(self):
        out = as_vector([1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            as_vector([[1.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_vector([np.nan])


class TestCheckFinite:
    def test_passes_on_finite(self):
        check_finite(np.ones((2, 2)))

    def test_counts_bad_values(self):
        arr = np.array([1.0, np.nan, np.inf])
        with pytest.raises(ValueError, match="2 non-finite"):
            check_finite(arr)


class TestCheckLabels:
    def test_returns_intp(self):
        out = check_labels([0, 1, 0], 3)
        assert out.dtype == np.intp

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="does not match"):
            check_labels([0, 1], 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_labels([0, -1], 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_labels(np.zeros((2, 2)), 2)


class TestCheckRandomState:
    def test_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_wraps_int_seed(self):
        a = check_random_state(7)
        b = check_random_state(7)
        assert a.random() == b.random()

    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)
