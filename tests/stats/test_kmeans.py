"""Unit tests for k-means clustering."""

import numpy as np
import pytest

from repro.stats import KMeans, kmeans_plus_plus_init


@pytest.fixture()
def three_blobs(rng):
    """Three well-separated Gaussian blobs."""
    centres = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate(
        [rng.normal(c, 0.3, size=(40, 2)) for c in centres]
    )
    labels = np.repeat([0, 1, 2], 40)
    return points, labels, centres


class TestKMeansBasics:
    def test_recovers_separated_blobs(self, three_blobs):
        points, true_labels, centres = three_blobs
        result = KMeans(3, seed=0).fit(points)
        # Each true blob must map to exactly one cluster.
        for blob in range(3):
            blob_labels = result.labels[true_labels == blob]
            assert np.unique(blob_labels).size == 1
        # Centroids near true centres (in some permutation).
        dist = np.sqrt(
            ((result.centroids[:, None, :] - centres[None, :, :]) ** 2).sum(-1)
        )
        assert (dist.min(axis=1) < 0.5).all()

    def test_inertia_decreases_with_more_clusters(self, three_blobs):
        points, _, _ = three_blobs
        inertias = [
            KMeans(k, seed=0, n_init=4).fit(points).inertia for k in (2, 3, 6)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_labels_cover_all_points(self, three_blobs):
        points, _, _ = three_blobs
        result = KMeans(3, seed=0).fit(points)
        assert result.labels.shape == (points.shape[0],)
        assert result.labels.min() >= 0
        assert result.labels.max() <= 2

    def test_k_equals_n_gives_zero_inertia(self, rng):
        points = rng.normal(size=(6, 2))
        result = KMeans(6, seed=1, n_init=4).fit(points)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_for_seed(self, three_blobs):
        points, _, _ = three_blobs
        a = KMeans(3, seed=11).fit(points)
        b = KMeans(3, seed=11).fit(points)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_converged_flag_set(self, three_blobs):
        points, _, _ = three_blobs
        assert KMeans(3, seed=0).fit(points).converged

    def test_single_cluster(self, rng):
        points = rng.normal(size=(20, 3))
        result = KMeans(1, seed=0).fit(points)
        np.testing.assert_allclose(
            result.centroids[0], points.mean(axis=0), atol=1e-9
        )


class TestKMeansValidation:
    def test_k_larger_than_n_raises(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            KMeans(5, seed=0).fit(rng.normal(size=(3, 2)))

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_invalid_n_init_raises(self):
        with pytest.raises(ValueError):
            KMeans(2, n_init=0)

    def test_bad_weight_length_raises(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="one entry per row"):
            KMeans(2, seed=0).fit(points, sample_weight=np.ones(5))

    def test_negative_weights_raise(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            KMeans(2, seed=0).fit(points, sample_weight=-np.ones(10))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            KMeans(2).predict([[0.0, 0.0]])


class TestKMeansWeights:
    def test_heavy_point_pulls_centroid(self):
        points = np.array([[0.0], [1.0]])
        weights = np.array([1.0, 99.0])
        result = KMeans(1, seed=0).fit(points, sample_weight=weights)
        assert result.centroids[0, 0] == pytest.approx(0.99)

    def test_cluster_weights_sum_to_one(self, three_blobs):
        points, _, _ = three_blobs
        result = KMeans(3, seed=0).fit(points)
        assert result.cluster_weights().sum() == pytest.approx(1.0)

    def test_cluster_weights_respect_sample_weight(self):
        points = np.array([[0.0], [0.1], [10.0]])
        result = KMeans(2, seed=0).fit(points)
        weighted = result.cluster_weights(sample_weight=[5.0, 5.0, 90.0])
        lone_cluster = result.labels[2]
        assert weighted[lone_cluster] == pytest.approx(0.9)

    def test_cluster_sizes_sum_to_n(self, three_blobs):
        points, _, _ = three_blobs
        result = KMeans(3, seed=0).fit(points)
        assert result.cluster_sizes().sum() == points.shape[0]


class TestKMeansPredict:
    def test_predict_matches_training_labels(self, three_blobs):
        points, _, _ = three_blobs
        km = KMeans(3, seed=0)
        result = km.fit(points)
        np.testing.assert_array_equal(km.predict(points), result.labels)

    def test_predict_new_points(self, three_blobs):
        points, _, _ = three_blobs
        km = KMeans(3, seed=0)
        result = km.fit(points)
        new_label = km.predict(np.array([[10.1, -0.2]]))[0]
        # Must match the cluster owning the (10, 0) blob.
        blob_cluster = result.labels[40]
        assert new_label == blob_cluster


class TestKMeansPlusPlusInit:
    def test_returns_k_distinct_centroids_on_blobs(self, three_blobs, rng):
        points, _, _ = three_blobs
        centroids = kmeans_plus_plus_init(points, 3, rng)
        assert centroids.shape == (3, 2)
        # With well-separated blobs, D^2 sampling picks one per blob
        # almost always; at minimum all centroids are actual points.
        for c in centroids:
            assert (np.abs(points - c).sum(axis=1) < 1e-12).any()

    def test_duplicate_points_fall_back_gracefully(self, rng):
        points = np.zeros((5, 2))
        centroids = kmeans_plus_plus_init(points, 3, rng)
        assert centroids.shape == (3, 2)
        np.testing.assert_allclose(centroids, 0.0)


class TestEmptyClusterRepair:
    def test_more_clusters_than_distinct_points(self, rng):
        # 3 distinct locations, k=3, many duplicates: forces repair paths.
        points = np.array([[0.0, 0.0]] * 5 + [[5.0, 5.0]] * 5 + [[9.0, 0.0]] * 5)
        result = KMeans(3, seed=2, n_init=4).fit(points)
        assert np.unique(result.labels).size == 3
        assert result.inertia == pytest.approx(0.0, abs=1e-9)
