"""Unit tests for the sampling-trial machinery."""

import numpy as np
import pytest

from repro.stats import (
    expected_max_error,
    percentile_interval,
    run_sampling_trials,
    summarize_distribution,
)


class TestSummarizeDistribution:
    def test_five_number_summary(self):
        values = np.arange(101, dtype=float)
        s = summarize_distribution(values)
        assert s.minimum == 0.0
        assert s.maximum == 100.0
        assert s.median == 50.0
        assert s.q1 == 25.0
        assert s.q3 == 75.0
        assert s.iqr() == 50.0
        assert s.n == 101

    def test_mean_std(self, rng):
        values = rng.normal(3.0, 2.0, size=5000)
        s = summarize_distribution(values)
        assert s.mean == pytest.approx(3.0, abs=0.1)
        assert s.std == pytest.approx(2.0, abs=0.1)

    def test_as_dict_keys(self):
        d = summarize_distribution([1.0, 2.0]).as_dict()
        assert set(d) == {"mean", "std", "min", "q1", "median", "q3", "max", "n"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_distribution([])


class TestRunSamplingTrials:
    def test_unbiased_mean(self, rng):
        population = rng.normal(10.0, 5.0, size=500)
        result = run_sampling_trials(
            population, sample_size=20, n_trials=2000, seed=1
        )
        assert result.truth == pytest.approx(population.mean())
        assert result.estimates.mean() == pytest.approx(result.truth, abs=0.1)

    def test_error_shrinks_with_sample_size(self, rng):
        population = rng.normal(0.0, 10.0, size=1000)
        small = run_sampling_trials(
            population, sample_size=5, n_trials=500, seed=2
        )
        large = run_sampling_trials(
            population, sample_size=200, n_trials=500, seed=2
        )
        assert large.errors().mean() < small.errors().mean()

    def test_weighted_truth(self):
        population = np.array([0.0, 100.0])
        result = run_sampling_trials(
            population,
            sample_size=1,
            n_trials=3000,
            seed=3,
            weights=np.array([0.25, 0.75]),
            replace=True,
        )
        assert result.truth == pytest.approx(75.0)
        assert result.estimates.mean() == pytest.approx(75.0, abs=3.0)

    def test_full_sample_without_replacement_is_exact(self, rng):
        population = rng.normal(size=50)
        result = run_sampling_trials(
            population, sample_size=50, n_trials=10, seed=4
        )
        np.testing.assert_allclose(result.estimates, result.truth, atol=1e-12)

    def test_oversample_without_replacement_raises(self):
        with pytest.raises(ValueError, match="exceeds population"):
            run_sampling_trials([1.0, 2.0], sample_size=3, n_trials=1)

    def test_oversample_with_replacement_ok(self):
        result = run_sampling_trials(
            [1.0, 2.0], sample_size=10, n_trials=5, seed=0, replace=True
        )
        assert result.estimates.shape == (5,)

    def test_max_error_at_confidence(self, rng):
        population = rng.normal(size=300)
        result = run_sampling_trials(
            population, sample_size=10, n_trials=1000, seed=5
        )
        p95 = result.max_error_at_confidence(0.95)
        assert (result.errors() <= p95).mean() >= 0.95

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_sampling_trials([], sample_size=1, n_trials=1)
        with pytest.raises(ValueError):
            run_sampling_trials([1.0], sample_size=0, n_trials=1)
        with pytest.raises(ValueError):
            run_sampling_trials([1.0], sample_size=1, n_trials=0)
        with pytest.raises(ValueError, match="weights"):
            run_sampling_trials(
                [1.0, 2.0], sample_size=1, n_trials=1, weights=[1.0]
            )

    def test_deterministic_for_seed(self, rng):
        population = rng.normal(size=100)
        a = run_sampling_trials(population, sample_size=5, n_trials=50, seed=9)
        b = run_sampling_trials(population, sample_size=5, n_trials=50, seed=9)
        np.testing.assert_array_equal(a.estimates, b.estimates)


class TestPercentileInterval:
    def test_covers_central_mass(self, rng):
        values = rng.normal(size=10000)
        low, high = percentile_interval(values, 0.95)
        inside = ((values >= low) & (values <= high)).mean()
        assert inside == pytest.approx(0.95, abs=0.01)

    def test_interval_ordering(self, rng):
        low, high = percentile_interval(rng.normal(size=100), 0.5)
        assert low <= high

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            percentile_interval([1.0, 2.0], 1.0)


class TestExpectedMaxError:
    def test_shrinks_with_sample_size(self, rng):
        population = rng.normal(size=500)
        errs = [
            expected_max_error(population, sample_size=n) for n in (10, 50, 200)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_zero_at_full_population(self, rng):
        population = rng.normal(size=100)
        err = expected_max_error(population, sample_size=100)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_matches_normal_theory(self, rng):
        population = rng.normal(0, 4.0, size=100000)
        err = expected_max_error(population, sample_size=100)
        # 1.96 * 4 / 10, finite-population correction ~ 1.
        assert err == pytest.approx(0.784, rel=0.05)

    def test_invalid_args(self, rng):
        population = rng.normal(size=10)
        with pytest.raises(ValueError):
            expected_max_error(population, sample_size=0)
        with pytest.raises(ValueError):
            expected_max_error(population, sample_size=11)
        with pytest.raises(ValueError):
            expected_max_error([1.0], sample_size=1)
