"""Seed derivation: stability, independence, and input normalisation."""

import numpy as np
import pytest

from repro.runtime.seeding import (
    root_seed_sequence,
    spawn_generators,
    spawn_seed_sequences,
)


class TestRootSeedSequence:
    def test_int_seed_is_reproducible(self):
        a = root_seed_sequence(7).generate_state(4)
        b = root_seed_sequence(7).generate_state(4)
        assert (a == b).all()

    def test_distinct_seeds_differ(self):
        a = root_seed_sequence(7).generate_state(4)
        b = root_seed_sequence(8).generate_state(4)
        assert (a != b).any()

    def test_existing_sequence_passes_through(self):
        seq = np.random.SeedSequence(3)
        assert root_seed_sequence(seq) is seq

    def test_generator_input_is_consumed_deterministically(self):
        a = root_seed_sequence(np.random.default_rng(5)).generate_state(4)
        b = root_seed_sequence(np.random.default_rng(5)).generate_state(4)
        assert (a == b).all()

    def test_none_gives_fresh_entropy(self):
        a = root_seed_sequence(None).generate_state(4)
        b = root_seed_sequence(None).generate_state(4)
        assert (a != b).any()


class TestSpawn:
    def test_children_depend_only_on_root_and_index(self):
        first = spawn_seed_sequences(11, 5)
        second = spawn_seed_sequences(11, 5)
        for a, b in zip(first, second):
            assert (a.generate_state(2) == b.generate_state(2)).all()

    def test_prefix_stability_across_counts(self):
        # Growing the fan-out must not disturb earlier tasks' streams.
        few = spawn_seed_sequences(11, 3)
        many = spawn_seed_sequences(11, 10)
        for a, b in zip(few, many):
            assert (a.generate_state(2) == b.generate_state(2)).all()

    def test_children_are_distinct(self):
        states = {
            tuple(seq.generate_state(2)) for seq in spawn_seed_sequences(0, 32)
        }
        assert len(states) == 32

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)

    def test_spawn_generators_match_sequences(self):
        gens = spawn_generators(42, 4)
        seqs = spawn_seed_sequences(42, 4)
        for gen, seq in zip(gens, seqs):
            assert gen.integers(0, 2**31) == np.random.default_rng(
                seq
            ).integers(0, 2**31)
