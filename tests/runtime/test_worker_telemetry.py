"""Worker telemetry travels back through the executor capture channel.

Regression suite for the historical loss of worker-side telemetry:
counters incremented inside a process-pool worker (cache hits, replay
counts) used to die with the worker because each worker mutates its own
copy of the process-global registry.  The executor now captures spans,
metric increments and nested ``StageStats`` per chunk and merges them
into the parent — these tests pin that contract, including the
serial-vs-process trace-tree equivalence it is designed around.
"""

import os

import pytest

from repro.obs import MetricsRegistry, disable, enable, get_metrics, inc
from repro.obs.metrics import set_metrics
from repro.obs.tracing import get_tracer, set_tracer
from repro.runtime.executor import ProcessExecutor, SerialExecutor
from repro.telemetry import RUNTIME_STATS


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous_tracer = get_tracer()
    previous_metrics = set_metrics(MetricsRegistry())
    yield
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)


def _counting_square(x: int) -> int:
    """Module-level (picklable) task that scores a counter per call."""
    inc("unit_probe_total")
    return x * x


def _inc_then_maybe_fail(x: int) -> int:
    """Scores a counter per call, then fails on odd items."""
    inc("unit_probe_total")
    if x % 2:
        raise ValueError(f"item {x} is odd")
    return x * x


def _nested_map(x: int) -> int:
    """Task that itself fans out through a serial executor."""
    return sum(
        SerialExecutor().map(
            _counting_square, range(x), stage="inner-unit"
        )
    )


class TestWorkerCounters:
    def test_counters_survive_worker_exit_without_tracing(self):
        """The satellite fix: counters merge back even with tracing off."""
        assert not get_tracer().enabled
        with ProcessExecutor(max_workers=2) as pool:
            results = pool.map(
                _counting_square, range(8), chunk_size=2, stage="unit"
            )
        assert results == [i * i for i in range(8)]
        assert get_metrics().counter("unit_probe_total") == 8.0

    def test_counters_match_serial_run(self):
        SerialExecutor().map(_counting_square, range(5), stage="unit")
        serial_count = get_metrics().counter("unit_probe_total")
        set_metrics(MetricsRegistry())
        with ProcessExecutor(max_workers=2) as pool:
            pool.map(_counting_square, range(5), chunk_size=2, stage="unit")
        assert get_metrics().counter("unit_probe_total") == serial_count == 5.0

    def test_counters_survive_a_failing_chunk(self):
        """The latent-bug fix: telemetry recorded before a chunk raises
        used to die with the exception instead of shipping back."""
        from repro.runtime.resilience import (
            ResilienceConfig,
            RetryPolicy,
            TaskFailure,
        )

        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=RetryPolicy(
                max_retries=0, backoff_base_s=0.0, backoff_jitter=0.0
            ),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            results = pool.map(
                _inc_then_maybe_fail, range(8), chunk_size=1, stage="unit"
            )
        failed = [r for r in results if isinstance(r, TaskFailure)]
        assert len(failed) == 4  # the odd items
        assert [r for r in results if not isinstance(r, TaskFailure)] == [
            x * x for x in range(8) if x % 2 == 0
        ]
        # Every execution scored its increment — including the four
        # chunks that raised.
        assert get_metrics().counter("unit_probe_total") == 8.0

    def test_counters_from_failing_chunks_match_serial(self):
        from repro.runtime.resilience import ResilienceConfig, RetryPolicy

        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=RetryPolicy(
                max_retries=2, backoff_base_s=0.0, backoff_jitter=0.0
            ),
        )
        SerialExecutor(resilience=res).map(
            _inc_then_maybe_fail, range(6), chunk_size=1, stage="unit"
        )
        serial_count = get_metrics().counter("unit_probe_total")
        set_metrics(MetricsRegistry())
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            pool.map(
                _inc_then_maybe_fail, range(6), chunk_size=1, stage="unit"
            )
        # 3 even items once each + 3 odd items three times each = 12.
        assert (
            get_metrics().counter("unit_probe_total") == serial_count == 12.0
        )

    def test_nested_stage_stats_ship_back(self):
        RUNTIME_STATS.clear()
        with ProcessExecutor(max_workers=2) as pool:
            pool.map(_nested_map, [3, 4], chunk_size=1, stage="outer-unit")
        stages = {record.stage for record in RUNTIME_STATS.records()}
        assert "outer-unit" in stages
        # The maps dispatched *inside* the workers arrived too.
        inner = [
            r for r in RUNTIME_STATS.records() if r.stage == "inner-unit"
        ]
        assert len(inner) == 2
        assert sum(r.n_tasks for r in inner) == 7
        # ... and their counter increments with them.
        assert get_metrics().counter("unit_probe_total") == 7.0


def _span_tree(tracer) -> dict[str, set]:
    """Span tree as parent-name -> multiset-ish of child names."""
    by_id = {span.span_id: span for span in tracer.spans()}
    tree: dict[str, set] = {}
    for span in tracer.spans():
        parent = by_id[span.parent_id].name if span.parent_id else None
        tree.setdefault(parent, set()).add(span.name)
    return tree


class TestWorkerSpans:
    def test_chunk_spans_stitch_under_dispatch(self):
        tracer = enable()
        try:
            with ProcessExecutor(max_workers=2) as pool:
                pool.map(
                    _counting_square, range(6), chunk_size=2, stage="unit"
                )
        finally:
            disable()
        by_name: dict[str, list] = {}
        for span in tracer.spans():
            by_name.setdefault(span.name, []).append(span)
        (dispatch,) = by_name["dispatch:unit"]
        chunks = by_name["chunk:unit"]
        assert len(chunks) == 3
        assert all(c.parent_id == dispatch.span_id for c in chunks)
        assert dispatch.attrs["executor"] == "process"
        assert dispatch.attrs["n_tasks"] == 6
        # Worker chunks keep their own pid (their Perfetto lane).
        assert all(c.pid != os.getpid() for c in chunks)

    def test_task_latency_histogram_recorded(self):
        enable()
        try:
            with ProcessExecutor(max_workers=1) as pool:
                pool.map(
                    _counting_square, range(4), chunk_size=2, stage="unit"
                )
        finally:
            disable()
        hist = get_metrics().histogram("task_latency_s:unit")
        assert hist is not None
        assert hist.count == 2  # one observation per chunk

    def test_serial_and_process_trace_trees_match(self):
        serial_tracer = enable()
        try:
            SerialExecutor().map(
                _counting_square, range(6), chunk_size=2, stage="unit"
            )
        finally:
            disable()
        process_tracer = enable()
        try:
            with ProcessExecutor(max_workers=2) as pool:
                pool.map(
                    _counting_square, range(6), chunk_size=2, stage="unit"
                )
        finally:
            disable()
        assert _span_tree(serial_tracer) == _span_tree(process_tracer)
        assert len(serial_tracer.spans()) == len(process_tracer.spans())


class TestCacheCounters:
    def test_cache_hits_and_misses_reach_registry(self):
        from repro.cluster.simulation import DatacenterConfig, run_simulation
        from repro.core.pipeline import FlareConfig
        from repro.runtime.cache import RuntimeCache

        dataset = run_simulation(
            DatacenterConfig(seed=11, target_unique_scenarios=20)
        ).dataset
        cache = RuntimeCache()
        config = FlareConfig()
        cache.get_profiled(config, dataset)
        cache.get_profiled(config, dataset)
        assert cache.misses == 1 and cache.hits == 1
        assert get_metrics().counter("cache_misses_total") == 1.0
        assert get_metrics().counter("cache_hits_total") == 1.0
