"""Executor contract: ordering, chunking, resolution, and stage stats."""

import pytest

from repro.runtime.executor import (
    EXECUTOR_ENV_VAR,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    resolve_executor,
)
from repro.telemetry import RUNTIME_STATS


def _square(x: int) -> int:
    """Module-level so process pools can pickle it."""
    return x * x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, range(10)) == [
            i * i for i in range(10)
        ]

    def test_map_empty(self):
        assert SerialExecutor().map(_square, []) == []

    def test_chunking_does_not_change_results(self):
        expected = [i * i for i in range(17)]
        for chunk_size in (1, 2, 5, 17, 100):
            got = SerialExecutor().map(
                _square, range(17), chunk_size=chunk_size
            )
            assert got == expected

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            SerialExecutor().map(_square, [1], chunk_size=0)

    def test_satisfies_protocol(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ProcessExecutor(max_workers=1), Executor)

    def test_records_stage_stats(self):
        RUNTIME_STATS.clear()
        SerialExecutor().map(_square, range(7), chunk_size=3, stage="unit")
        (record,) = [r for r in RUNTIME_STATS.records() if r.stage == "unit"]
        assert record.executor == "serial"
        assert record.n_tasks == 7
        assert record.n_chunks == 3
        assert record.wall_s >= 0.0


class TestProcessExecutor:
    def test_map_matches_serial(self):
        with ProcessExecutor(max_workers=2) as pool:
            got = pool.map(_square, range(20), chunk_size=4)
        assert got == SerialExecutor().map(_square, range(20))

    def test_pool_reused_across_maps(self):
        with ProcessExecutor(max_workers=2) as pool:
            first = pool.map(_square, range(5))
            inner = pool._pool
            second = pool.map(_square, range(5))
            assert pool._pool is inner
        assert first == second == [i * i for i in range(5)]
        assert pool._pool is None  # closed on exit

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)


class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert isinstance(resolve_executor(), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_process_specs(self):
        executor = resolve_executor("process")
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == available_workers()
        assert resolve_executor("process:3").max_workers == 3

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process:2")
        executor = resolve_executor()
        assert isinstance(executor, ProcessExecutor)
        assert executor.max_workers == 2

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("serial:4")
        with pytest.raises(ValueError):
            resolve_executor("threads")
        with pytest.raises(ValueError):
            resolve_executor("process:lots")
        with pytest.raises(TypeError):
            resolve_executor(3.5)


class TestRuntimeStatsRegistry:
    def test_totals_and_render(self):
        RUNTIME_STATS.clear()
        SerialExecutor().map(_square, range(4), stage="render-check")
        SerialExecutor().map(_square, range(6), stage="render-check")
        assert "render-check" in RUNTIME_STATS.stages()
        totals = RUNTIME_STATS.totals()["render-check"]
        assert totals["tasks"] == 10
        assert totals["dispatches"] == 2
        text = RUNTIME_STATS.render()
        assert "render-check" in text

    def test_clear(self):
        SerialExecutor().map(_square, range(2), stage="to-clear")
        RUNTIME_STATS.clear()
        assert not RUNTIME_STATS.records()
