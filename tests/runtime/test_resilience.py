"""Chaos regression suite for the fault-tolerant execution runtime.

The resilience guarantee under test: serial and process backends produce
bit-identical results under every injected-fault mode, failure accounting
is deterministic (skip positions match across backends), and a run killed
mid-dispatch resumes from its checkpoint journal to the exact result an
uninterrupted run produces.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.obs import MetricsRegistry, get_metrics
from repro.obs.metrics import set_metrics
from repro.obs.tracing import get_tracer, set_tracer
from repro.runtime import (
    FailurePolicy,
    FaultSpec,
    ProcessExecutor,
    ResilienceConfig,
    RetryPolicy,
    SerialExecutor,
    TaskFailure,
    TaskRetryError,
    partition_failures,
)
from repro.runtime.cache import CheckpointJournal
from repro.runtime.faultinject import InjectedFault, wrap_faults

SRC_DIR = str(pathlib.Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous_tracer = get_tracer()
    previous_metrics = set_metrics(MetricsRegistry())
    yield
    set_tracer(previous_tracer)
    set_metrics(previous_metrics)


def _square(x: int) -> int:
    return x * x


def _fast_retry(max_retries: int = 3) -> RetryPolicy:
    """Retries without the production backoff sleeps."""
    return RetryPolicy(
        max_retries=max_retries, backoff_base_s=0.0, backoff_jitter=0.0
    )


ITEMS = list(range(48))
EXPECTED = [x * x for x in ITEMS]


class TestFaultSpec:
    def test_rates_validate(self):
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=0.6, exception_rate=0.6)
        with pytest.raises(ValueError):
            FaultSpec(faults_per_task=0)

    def test_fate_is_deterministic_and_content_keyed(self):
        spec = FaultSpec(exception_rate=0.5, seed=3)
        fates = [spec.mode_for(x) for x in range(200)]
        assert fates == [spec.mode_for(x) for x in range(200)]
        hit = sum(f is not None for f in fates)
        assert 60 <= hit <= 140  # ~rate, seeded so exact across runs

    def test_fate_independent_of_seed_only_via_spec(self):
        a = FaultSpec(exception_rate=0.5, seed=1)
        b = FaultSpec(exception_rate=0.5, seed=2)
        assert [a.mode_for(x) for x in range(64)] != [
            b.mode_for(x) for x in range(64)
        ]

    def test_faulty_task_recovers_after_budget(self):
        spec = FaultSpec(exception_rate=1.0, faults_per_task=2, seed=0)
        task = wrap_faults(_square, spec, attempt=0)
        with pytest.raises(InjectedFault):
            task(3)
        with pytest.raises(InjectedFault):
            wrap_faults(_square, spec, attempt=1)(3)
        assert wrap_faults(_square, spec, attempt=2)(3) == 9

    def test_no_spec_returns_fn_untouched(self):
        assert wrap_faults(_square, None, 0) is _square
        assert wrap_faults(_square, FaultSpec(), 0) is _square


class TestSerialFaultRecovery:
    def test_exception_faults_converge_to_fault_free(self):
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(exception_rate=0.3, seed=7),
        )
        got = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        assert got == EXPECTED

    def test_injected_crash_is_retried_serially(self):
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(crash_rate=0.2, seed=5),
        )
        got = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        assert got == EXPECTED

    def test_fail_fast_propagates(self):
        res = ResilienceConfig(
            faults=FaultSpec(exception_rate=0.5, seed=7)
        )
        assert res.policy is FailurePolicy.FAIL_FAST
        with pytest.raises(InjectedFault):
            SerialExecutor(resilience=res).map(
                _square, ITEMS, chunk_size=4, stage="chaos"
            )

    def test_retry_then_raise_exhaustion_is_typed(self):
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(max_retries=1),
            faults=FaultSpec(
                exception_rate=0.5, faults_per_task=10, seed=7
            ),
        )
        with pytest.raises(TaskRetryError):
            SerialExecutor(resilience=res).map(
                _square, ITEMS, chunk_size=4, stage="chaos"
            )

    def test_retry_then_skip_degrades_in_position(self):
        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=_fast_retry(max_retries=1),
            faults=FaultSpec(
                exception_rate=0.25, faults_per_task=10, seed=9
            ),
        )
        got = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        assert len(got) == len(ITEMS)
        ok, failed = partition_failures(got)
        assert failed and all(f.stage == "chaos" for f in failed)
        assert all(f.attempts == 2 for f in failed)
        healthy = [
            i for i, r in enumerate(got) if not isinstance(r, TaskFailure)
        ]
        assert all(got[i] == EXPECTED[i] for i in healthy)

    def test_noop_config_matches_plain_executor(self):
        plain = SerialExecutor().map(_square, ITEMS, chunk_size=4)
        noop = SerialExecutor(resilience=ResilienceConfig()).map(
            _square, ITEMS, chunk_size=4
        )
        assert plain == noop == EXPECTED


@pytest.mark.slow
class TestSerialProcessIdentityUnderFaults:
    """The chaos guarantee: backend choice is invisible even under faults."""

    @pytest.mark.parametrize(
        "faults",
        [
            FaultSpec(exception_rate=0.3, seed=7),
            FaultSpec(crash_rate=0.15, seed=3),
            FaultSpec(slow_rate=0.3, slow_s=0.002, seed=11),
            FaultSpec(
                crash_rate=0.08,
                exception_rate=0.12,
                slow_rate=0.1,
                slow_s=0.002,
                seed=13,
            ),
        ],
        ids=["exception", "crash", "slow", "mixed"],
    )
    def test_every_fault_mode_bit_identical(self, faults):
        res = ResilienceConfig(
            policy="retry_then_raise", retry=_fast_retry(), faults=faults
        )
        serial = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        with ProcessExecutor(max_workers=3, resilience=res) as pool:
            process = pool.map(_square, ITEMS, chunk_size=4, stage="chaos")
        assert serial == process == EXPECTED

    def test_hang_faults_with_timeout_bit_identical(self):
        res = ResilienceConfig(
            policy="retry_then_raise",
            timeout_s=0.5,
            retry=_fast_retry(),
            faults=FaultSpec(hang_rate=0.1, hang_s=10.0, seed=11),
        )
        serial = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        set_metrics(MetricsRegistry())
        with ProcessExecutor(max_workers=3, resilience=res) as pool:
            process = pool.map(_square, ITEMS, chunk_size=4, stage="chaos")
        assert serial == process == EXPECTED
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("task_timeouts_total", 0) > 0
        assert counters.get("pool_respawns_total", 0) > 0

    def test_skip_positions_identical_across_backends(self):
        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=_fast_retry(max_retries=1),
            faults=FaultSpec(
                exception_rate=0.25, faults_per_task=10, seed=9
            ),
        )
        serial = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=4, stage="chaos"
        )
        with ProcessExecutor(max_workers=3, resilience=res) as pool:
            process = pool.map(_square, ITEMS, chunk_size=4, stage="chaos")
        assert serial == process  # TaskFailure is a frozen value type
        assert any(isinstance(r, TaskFailure) for r in serial)

    def test_worker_crash_pool_recovers_and_counts(self):
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(crash_rate=0.15, seed=3),
        )
        with ProcessExecutor(max_workers=2, resilience=res) as pool:
            got = pool.map(_square, ITEMS, chunk_size=4, stage="chaos")
        assert got == EXPECTED
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("pool_respawns_total", 0) > 0
        assert counters.get("task_retries_total", 0) > 0


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=4)
        a = policy.delay_s("stage", 3, 2)
        assert a == RetryPolicy(seed=4).delay_s("stage", 3, 2)
        assert a != RetryPolicy(seed=5).delay_s("stage", 3, 2)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.01,
            backoff_factor=2.0,
            backoff_max_s=0.05,
            backoff_jitter=0.0,
        )
        delays = [policy.delay_s("s", 0, n) for n in range(5)]
        assert delays == sorted(delays)
        assert delays[-1] == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(timeout_s=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(policy="bogus")


class TestFailureObservability:
    def test_retry_and_skip_counters(self):
        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=_fast_retry(max_retries=2),
            faults=FaultSpec(
                exception_rate=0.25, faults_per_task=10, seed=9
            ),
        )
        got = SerialExecutor(resilience=res).map(
            _square, ITEMS, chunk_size=1, stage="chaos"
        )
        _, failed = partition_failures(got)
        counters = get_metrics().snapshot()["counters"]
        assert counters["tasks_skipped_total"] == len(failed)
        # chunk_size=1: each skipped task burned max_retries retries.
        assert counters["task_retries_total"] == 2 * len(failed)

    def test_failure_spans_recorded_when_tracing(self):
        from repro.obs import disable, enable

        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(exception_rate=0.3, seed=7),
        )
        tracer = enable()
        try:
            SerialExecutor(resilience=res).map(
                _square, ITEMS, chunk_size=4, stage="chaos"
            )
        finally:
            disable()
        failures = [s for s in tracer.spans() if s.name == "failure:chaos"]
        assert failures
        assert all("error" in s.attrs for s in failures)


class TestCheckpointJournal:
    def test_full_resume_restores_every_chunk(self, tmp_path):
        journal = CheckpointJournal(tmp_path, "run")
        first = SerialExecutor(checkpoint=journal).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        assert len(journal) == len(ITEMS) // 4
        set_metrics(MetricsRegistry())
        again = SerialExecutor(
            checkpoint=CheckpointJournal(tmp_path, "run")
        ).map(_square, ITEMS, chunk_size=4, stage="ck")
        assert again == first == EXPECTED
        counters = get_metrics().snapshot()["counters"]
        assert counters["checkpoint_hits_total"] == len(ITEMS)

    def test_journals_are_per_run_id(self, tmp_path):
        SerialExecutor(checkpoint=CheckpointJournal(tmp_path, "a")).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        set_metrics(MetricsRegistry())
        SerialExecutor(checkpoint=CheckpointJournal(tmp_path, "b")).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("checkpoint_hits_total", 0) == 0

    def test_changed_inputs_miss_the_journal(self, tmp_path):
        journal = CheckpointJournal(tmp_path, "run")
        SerialExecutor(checkpoint=journal).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        set_metrics(MetricsRegistry())
        SerialExecutor(checkpoint=journal).map(
            _square, [x + 1 for x in ITEMS], chunk_size=4, stage="ck"
        )
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("checkpoint_hits_total", 0) == 0

    def test_skipped_chunks_are_never_journaled(self, tmp_path):
        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=_fast_retry(max_retries=0),
            faults=FaultSpec(
                exception_rate=0.25, faults_per_task=10, seed=9
            ),
        )
        journal = CheckpointJournal(tmp_path, "run")
        got = SerialExecutor(resilience=res, checkpoint=journal).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        failed_chunks = sum(
            1
            for start in range(0, len(ITEMS), 4)
            if any(
                isinstance(r, TaskFailure) for r in got[start : start + 4]
            )
        )
        assert failed_chunks > 0
        assert len(journal) == len(ITEMS) // 4 - failed_chunks

    def test_process_backend_shares_serial_journal(self, tmp_path):
        SerialExecutor(checkpoint=CheckpointJournal(tmp_path, "run")).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        set_metrics(MetricsRegistry())
        with ProcessExecutor(
            max_workers=2, checkpoint=CheckpointJournal(tmp_path, "run")
        ) as pool:
            got = pool.map(_square, ITEMS, chunk_size=4, stage="ck")
        assert got == EXPECTED
        counters = get_metrics().snapshot()["counters"]
        assert counters["checkpoint_hits_total"] == len(ITEMS)

    def test_corrupt_journal_entry_is_a_miss(self, tmp_path):
        journal = CheckpointJournal(tmp_path, "run")
        SerialExecutor(checkpoint=journal).map(
            _square, ITEMS, chunk_size=4, stage="ck"
        )
        victim = sorted(journal.directory.glob("chunk-*.pkl"))[0]
        victim.write_bytes(b"not a pickle")
        again = SerialExecutor(
            checkpoint=CheckpointJournal(tmp_path, "run")
        ).map(_square, ITEMS, chunk_size=4, stage="ck")
        assert again == EXPECTED


@pytest.mark.slow
class TestMidRunKillResume:
    """Acceptance: a run killed at ~50% resumes to the identical result."""

    def _run(self, tmp_path, kill_at: int, out_name: str):
        script = textwrap.dedent(
            f"""
            import json, os, sys
            sys.path.insert(0, {SRC_DIR!r})
            from repro.obs import get_metrics
            from repro.runtime import SerialExecutor
            from repro.runtime.cache import CheckpointJournal

            kill_at = int(sys.argv[1])
            n = [0]
            def task(x):
                n[0] += 1
                if 0 <= kill_at < n[0]:
                    os._exit(9)
                return x * x

            journal = CheckpointJournal({str(tmp_path)!r}, "kill")
            results = SerialExecutor(checkpoint=journal).map(
                task, range(40), chunk_size=2, stage="kill"
            )
            hits = get_metrics().snapshot()["counters"].get(
                "checkpoint_hits_total", 0
            )
            json.dump(
                {{"results": results, "executed": n[0], "hits": hits}},
                open(sys.argv[2], "w"),
            )
            """
        )
        out = tmp_path / out_name
        proc = subprocess.run(
            [sys.executable, "-c", script, str(kill_at), str(out)],
            capture_output=True,
            text=True,
        )
        return proc, out

    def test_resume_runs_only_unfinished_tasks(self, tmp_path):
        proc, _ = self._run(tmp_path, kill_at=20, out_name="first.json")
        assert proc.returncode == 9, proc.stderr
        journaled = len(list((tmp_path / "kill").glob("chunk-*.pkl")))
        assert journaled == 10  # 20 tasks of 40, 2 per chunk

        proc, out = self._run(tmp_path, kill_at=-1, out_name="second.json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert payload["results"] == [x * x for x in range(40)]
        # Only the unfinished half re-executed; the rest came from the
        # journal (scored on the checkpoint-hit counter).
        assert payload["executed"] == 20
        assert payload["hits"] == 20

        # And against an uninterrupted control run: bit-for-bit equal.
        control, out2 = self._run(
            tmp_path / "fresh", kill_at=-1, out_name="control.json"
        )
        assert control.returncode == 0, control.stderr
        assert json.loads(out2.read_text())["results"] == payload["results"]


@pytest.mark.slow
class TestPipelineUnderFaults:
    """Acceptance: fit under 10% injected worker crashes ≡ fault-free serial."""

    def test_process_fit_with_crashes_matches_serial_fault_free(self):
        from repro.cluster.simulation import DatacenterConfig, run_simulation
        from repro.core.pipeline import Flare, FlareConfig

        dataset = run_simulation(
            DatacenterConfig(seed=19, target_unique_scenarios=60)
        ).dataset
        config = FlareConfig()

        baseline = Flare(config).fit(dataset)

        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(crash_rate=0.10, seed=23),
        )
        with ProcessExecutor(max_workers=3, resilience=res) as pool:
            chaotic = Flare(config).fit(dataset, runtime=pool)

        np.testing.assert_array_equal(
            baseline.profiled.matrix, chaotic.profiled.matrix
        )
        np.testing.assert_array_equal(
            baseline.analysis.kmeans.labels, chaotic.analysis.kmeans.labels
        )

    def test_sampling_trials_under_faults_match_fault_free(self):
        from repro.stats.sampling import run_sampling_trials

        population = np.linspace(0.0, 10.0, 97)
        clean = run_sampling_trials(
            population, sample_size=12, n_trials=60, seed=5
        )
        res = ResilienceConfig(
            policy="retry_then_raise",
            retry=_fast_retry(),
            faults=FaultSpec(exception_rate=0.3, seed=31),
        )
        chaotic = run_sampling_trials(
            population,
            sample_size=12,
            n_trials=60,
            seed=5,
            executor=SerialExecutor(resilience=res),
        )
        np.testing.assert_array_equal(clean.estimates, chaotic.estimates)

    def test_replay_skip_degradation_renormalises(self):
        from repro.cluster.features import FEATURE_1_CACHE
        from repro.cluster.simulation import DatacenterConfig, run_simulation
        from repro.core.pipeline import Flare, FlareConfig

        dataset = run_simulation(
            DatacenterConfig(seed=19, target_unique_scenarios=60)
        ).dataset
        flare = Flare(FlareConfig()).fit(dataset)
        res = ResilienceConfig(
            policy="retry_then_skip",
            retry=_fast_retry(max_retries=0),
            # seed chosen so some replay chunks fail and some survive
            faults=FaultSpec(
                exception_rate=0.3, faults_per_task=10, seed=2
            ),
        )
        estimate = flare.evaluate(
            FEATURE_1_CACHE, runtime=SerialExecutor(resilience=res)
        )
        clean = flare.evaluate(FEATURE_1_CACHE)
        # Fewer groups were measured, weights renormalised over survivors.
        assert len(estimate.per_cluster) < len(clean.per_cluster)
        assert estimate.per_cluster  # something survived
        total = sum(c.weight for c in estimate.per_cluster)
        assert total == pytest.approx(1.0)
