"""Serial and parallel execution must be bit-identical.

Executor choice is a performance knob, not a semantics knob: every
fan-out loop derives per-task streams via ``SeedSequence.spawn``, so the
same root seed yields the same bits under any executor, worker count, or
chunking.  These tests hold the runtime to that contract on the real
fan-out loops (sampling trials, stratified trials, replays).
"""

import numpy as np
import pytest

from repro.baselines.sampling import evaluate_by_sampling
from repro.baselines.stratified import evaluate_by_stratified_sampling
from repro.cluster.features import FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.runtime.executor import ProcessExecutor, SerialExecutor
from repro.stats.sampling import run_sampling_trials


@pytest.fixture(scope="module")
def process_pool():
    pool = ProcessExecutor(max_workers=2)
    yield pool
    pool.close()


class TestSamplingTrialDeterminism:
    def test_serial_matches_process(self, process_pool):
        rng = np.random.default_rng(0)
        population = rng.normal(10.0, 3.0, size=200)
        kwargs = dict(sample_size=12, n_trials=64, seed=99)
        serial = run_sampling_trials(
            population, executor=SerialExecutor(), **kwargs
        )
        parallel = run_sampling_trials(
            population, executor=process_pool, **kwargs
        )
        np.testing.assert_array_equal(parallel.estimates, serial.estimates)

    def test_independent_of_chunking(self, monkeypatch):
        from repro.stats import sampling as sampling_mod

        population = np.linspace(0.0, 50.0, 150)
        baseline = run_sampling_trials(
            population, sample_size=10, n_trials=40, seed=7
        )
        monkeypatch.setattr(sampling_mod, "TRIAL_CHUNK_SIZE", 3)
        rechunked = run_sampling_trials(
            population, sample_size=10, n_trials=40, seed=7
        )
        np.testing.assert_array_equal(rechunked.estimates, baseline.estimates)

    def test_weighted_trials_deterministic(self, process_pool):
        rng = np.random.default_rng(1)
        population = rng.normal(5.0, 1.0, size=80)
        weights = rng.uniform(0.5, 2.0, size=80)
        kwargs = dict(
            sample_size=8, n_trials=32, seed=3, weights=weights, replace=True
        )
        serial = run_sampling_trials(population, **kwargs)
        parallel = run_sampling_trials(
            population, executor=process_pool, **kwargs
        )
        np.testing.assert_array_equal(parallel.estimates, serial.estimates)


class TestBaselineDeterminism:
    def test_naive_sampling_baseline(self, small_sim, process_pool):
        kwargs = dict(sample_size=6, n_trials=24, seed=5)
        serial = evaluate_by_sampling(
            small_sim.dataset, FEATURE_2_DVFS, **kwargs
        )
        parallel = evaluate_by_sampling(
            small_sim.dataset, FEATURE_2_DVFS, executor=process_pool, **kwargs
        )
        np.testing.assert_array_equal(
            parallel.trials.estimates, serial.trials.estimates
        )

    def test_stratified_baseline(self, small_sim, process_pool):
        kwargs = dict(sample_size=6, n_trials=24, seed=5)
        serial = evaluate_by_stratified_sampling(
            small_sim.dataset, FEATURE_2_DVFS, **kwargs
        )
        parallel = evaluate_by_stratified_sampling(
            small_sim.dataset, FEATURE_2_DVFS, executor=process_pool, **kwargs
        )
        np.testing.assert_array_equal(
            parallel.trials.estimates, serial.trials.estimates
        )


class TestReplayDeterminism:
    def test_evaluate_matches_serial(self, small_flare, process_pool):
        serial = small_flare.evaluate(
            FEATURE_1_CACHE, runtime=SerialExecutor()
        )
        parallel = small_flare.evaluate(FEATURE_1_CACHE, runtime=process_pool)
        assert parallel.reduction_pct == serial.reduction_pct
        assert [
            (c.cluster_id, c.weight, c.reduction_pct, c.scenario_id)
            for c in parallel.per_cluster
        ] == [
            (c.cluster_id, c.weight, c.reduction_pct, c.scenario_id)
            for c in serial.per_cluster
        ]

    def test_replay_many_matches_loop(self, small_flare, process_pool):
        replayer = small_flare.replayer
        scenarios = small_flare.representatives.representative_scenarios()[:4]
        looped = tuple(
            replayer.replay(s, FEATURE_1_CACHE) for s in scenarios
        )
        dispatched = replayer.replay_many(
            scenarios, FEATURE_1_CACHE, executor=process_pool
        )
        assert dispatched == looped
