"""RuntimeConfig: validation, persistence round-trip, CLI mapping.

The unified runtime API collapses the historical ``executor=`` /
``chunk_size=`` / ``retries=`` / ``task_timeout=`` / ``failure_policy=``
/ ``checkpoint=`` keyword sprawl into one value; these tests pin the
dataclass contract the facade, the CLI and model persistence all share.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    DISPATCH_MODES,
    DispatchError,
    ResolvedRuntime,
    RuntimeConfig,
    SerialExecutor,
    choose_dispatch,
    cost_aware_block,
    record_stage_cost,
    resolve_runtime,
)


class TestValidation:
    def test_defaults_are_valid(self):
        config = RuntimeConfig()
        assert config.dispatch == "auto"
        assert config.chunk_size == "auto"

    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError, match="dispatch"):
            RuntimeConfig(dispatch="carrier-pigeon")

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "large"])
    def test_rejects_bad_chunk_size(self, bad):
        with pytest.raises(ValueError, match="chunk_size"):
            RuntimeConfig(chunk_size=bad)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            RuntimeConfig(retries=-1)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="task_timeout_s"):
            RuntimeConfig(task_timeout_s=0.0)

    def test_rejects_unknown_failure_policy(self):
        with pytest.raises(ValueError):
            RuntimeConfig(failure_policy="shrug")

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            RuntimeConfig(resume=True)


class TestDerivedPieces:
    def test_no_resilience_by_default(self):
        assert RuntimeConfig().resilience() is None

    def test_resilience_from_knobs(self):
        res = RuntimeConfig(retries=2, task_timeout_s=1.5).resilience()
        assert res is not None
        assert res.retry.max_retries == 2
        assert res.timeout_s == 1.5
        assert res.policy.value == "retry_then_raise"

    def test_explicit_policy_without_retries(self):
        res = RuntimeConfig(failure_policy="retry_then_skip").resilience()
        assert res.policy.value == "retry_then_skip"
        assert res.retry.max_retries == 3  # documented default

    def test_no_checkpoint_without_dir(self):
        assert RuntimeConfig().checkpoint(("fit", "x")) is None

    def test_checkpoint_run_key_separates_journals(self, tmp_path):
        config = RuntimeConfig(checkpoint_dir=str(tmp_path))
        a = config.checkpoint(("fit", "a"))
        b = config.checkpoint(("fit", "b"))
        assert a.run_id != b.run_id

    def test_checkpoint_clears_unless_resume(self, tmp_path):
        config = RuntimeConfig(checkpoint_dir=str(tmp_path))
        journal = config.checkpoint("key")
        journal.put("a" * 64, [1.0])
        # A fresh (non-resume) run starts from a cleared journal…
        assert len(config.checkpoint("key")) == 0
        journal.put("b" * 64, [2.0])
        # …while resume=True keeps the journaled chunks.
        assert len(config.with_(resume=True).checkpoint("key")) == 1


class TestPersistence:
    def test_round_trip(self):
        config = RuntimeConfig(
            executor="process:2",
            dispatch="shardref",
            chunk_size=32,
            retries=1,
            task_timeout_s=4.0,
            failure_policy="retry_then_raise",
            checkpoint_dir="/tmp/journal",
            resume=False,
        )
        assert RuntimeConfig.from_dict(config.to_dict()) == config

    def test_executor_instance_persists_as_spec(self):
        with SerialExecutor() as pool:
            payload = RuntimeConfig(executor=pool).to_dict()
        assert isinstance(payload["executor"], str)

    def test_with_copies(self):
        base = RuntimeConfig()
        assert base.with_(dispatch="pickle").dispatch == "pickle"
        assert base.dispatch == "auto"


class TestResolveRuntime:
    def test_none_resolves_owned(self):
        resolved = resolve_runtime(None)
        assert resolved.owned
        resolved.close()

    def test_executor_instance_not_owned(self):
        with SerialExecutor() as pool:
            resolved = resolve_runtime(pool)
            assert resolved.executor is pool
            assert not resolved.owned
            resolved.close()  # must not close the caller's executor
            assert pool.map(lambda x: x, [1]) == [1]

    def test_resolved_passthrough_is_identity(self):
        resolved = resolve_runtime("serial")
        assert resolve_runtime(resolved) is resolved
        resolved.close()

    def test_config_with_instance_not_owned(self):
        with SerialExecutor() as pool:
            resolved = resolve_runtime(RuntimeConfig(executor=pool))
            assert not resolved.owned
            resolved.close()
            assert pool.map(lambda x: x, [1]) == [1]

    def test_garbage_raises(self):
        with pytest.raises(TypeError):
            resolve_runtime(3.14)

    def test_close_is_idempotent(self):
        resolved = resolve_runtime("serial")
        resolved.close()
        resolved.close()
        assert isinstance(resolved, ResolvedRuntime)


class TestChooseDispatch:
    def test_serial_always_pickles(self):
        assert (
            choose_dispatch(
                "auto", store_backed=True, parallel=False, journaled=False
            )
            == "pickle"
        )

    def test_store_backed_parallel_goes_shardref(self):
        assert (
            choose_dispatch(
                "auto", store_backed=True, parallel=True, journaled=True
            )
            == "shardref"
        )

    def test_journaled_in_memory_keeps_pickle(self):
        assert (
            choose_dispatch(
                "auto", store_backed=False, parallel=True, journaled=True
            )
            == "pickle"
        )

    def test_in_memory_parallel_goes_shm(self):
        assert (
            choose_dispatch(
                "auto", store_backed=False, parallel=True, journaled=False
            )
            == "shm"
        )

    def test_explicit_modes_honoured(self):
        for mode in DISPATCH_MODES[1:]:
            assert (
                choose_dispatch(
                    mode, store_backed=True, parallel=False, journaled=False
                )
                == mode
            )

    def test_shardref_needs_a_store(self):
        with pytest.raises(DispatchError, match="shard-backed"):
            choose_dispatch(
                "shardref", store_backed=False, parallel=True, journaled=False
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(DispatchError, match="unknown"):
            choose_dispatch(
                "zero-copy", store_backed=True, parallel=True, journaled=False
            )


class TestCostAwareBlock:
    def test_fallback_divisor_without_observations(self):
        assert cost_aware_block(640, 1, "never-observed-stage") == 10

    def test_fallback_floors_at_one(self):
        assert cost_aware_block(10, 1, "never-observed-stage") == 1

    def test_zero_items(self):
        assert cost_aware_block(0, 4, "never-observed-stage") == 1

    def test_cost_model_targets_block_seconds(self):
        stage = "test-cost-model-stage"
        for _ in range(10):
            record_stage_cost(stage, wall_s=1.0, n_items=100)  # 10ms/item
        # 0.05s target / 0.01s per item = 5 items per block.
        assert cost_aware_block(10_000, 1, stage) == 5

    def test_balance_cap_with_many_workers(self):
        stage = "test-cost-cap-stage"
        for _ in range(10):
            record_stage_cost(stage, wall_s=0.000001, n_items=1000)
        # Cheap items would give a huge block; the cap keeps >= 4
        # blocks per worker for load balancing.
        assert cost_aware_block(160, 4, stage) == 10


class TestCliMapping:
    def _parse(self, extra):
        from repro.cli import build_parser

        return build_parser().parse_args(
            ["fit", "--dataset", "d.json", "--out", "m.json", *extra]
        )

    def test_flags_map_one_to_one(self, tmp_path):
        from repro.cli import _resolve_runtime

        args = self._parse(
            [
                "--dispatch", "pickle",
                "--chunk-size", "32",
                "--retries", "2",
                "--task-timeout", "9.5",
                "--failure-policy", "retry_then_skip",
                "--checkpoint", str(tmp_path),
            ]
        )
        resolved = _resolve_runtime(args, ("fit", "d.json", 18))
        try:
            config = resolved.config
            assert config.dispatch == "pickle"
            assert config.chunk_size == 32
            assert config.retries == 2
            assert config.task_timeout_s == 9.5
            assert config.failure_policy == "retry_then_skip"
            assert config.checkpoint_dir == str(tmp_path)
            assert config.resume is False
        finally:
            resolved.close()

    def test_default_flags_mean_legacy_path(self):
        from repro.cli import _resolve_runtime

        args = self._parse([])
        assert _resolve_runtime(args, ("fit", "d.json", 18)) is None

    def test_resume_requires_checkpoint(self):
        from repro.cli import _resolve_runtime

        args = self._parse(["--resume"])
        with pytest.raises(SystemExit, match="--checkpoint"):
            _resolve_runtime(args, ("fit", "d.json", 18))

    def test_rejects_unknown_dispatch_choice(self, capsys):
        with pytest.raises(SystemExit):
            self._parse(["--dispatch", "telepathy"])
