"""Digest-keyed artefact cache: keying, memory LRU, and the disk layer."""

import numpy as np
import pytest

from repro.core.analyzer import AnalyzerConfig
from repro.core.pipeline import FlareConfig
from repro.runtime.cache import (
    RuntimeCache,
    config_digest,
    dataset_digest,
    default_cache,
)


@pytest.fixture()
def config() -> FlareConfig:
    return FlareConfig(
        analyzer=AnalyzerConfig(
            n_clusters=4, cluster_counts=tuple(range(2, 7))
        )
    )


class TestDigests:
    def test_dataset_digest_stable(self, tiny_dataset):
        assert dataset_digest(tiny_dataset) == dataset_digest(tiny_dataset)

    def test_dataset_digest_discriminates(self, tiny_dataset, small_sim):
        assert dataset_digest(tiny_dataset) != dataset_digest(
            small_sim.dataset
        )

    def test_config_digest_discriminates(self, config):
        other = FlareConfig(analyzer=AnalyzerConfig(n_clusters=9))
        assert config_digest(config) != config_digest(other)
        assert config_digest(config) == config_digest(config)


class TestMemoryLayer:
    def test_profiled_memory_hit_returns_same_object(self, config, tiny_dataset):
        cache = RuntimeCache()
        first = cache.get_profiled(config, tiny_dataset)
        second = cache.get_profiled(config, tiny_dataset)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_fitted_memory_hit_returns_same_object(self, config, tiny_dataset):
        cache = RuntimeCache()
        first = cache.get_fitted(config, tiny_dataset)
        second = cache.get_fitted(config, tiny_dataset)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, config, tiny_dataset, small_sim):
        cache = RuntimeCache(memory_slots=1)
        cache.get_profiled(config, tiny_dataset)
        cache.get_profiled(config, small_sim.dataset)  # evicts tiny
        cache.get_profiled(config, tiny_dataset)
        assert cache.misses == 3

    def test_zero_slots_never_caches(self, config, tiny_dataset):
        cache = RuntimeCache(memory_slots=0)
        cache.get_profiled(config, tiny_dataset)
        cache.get_profiled(config, tiny_dataset)
        assert cache.hits == 0 and cache.misses == 2

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            RuntimeCache(memory_slots=-1)


class TestDiskLayer:
    def test_profiled_round_trip(self, config, tiny_dataset, tmp_path):
        warm = RuntimeCache(disk_dir=tmp_path)
        original = warm.get_profiled(config, tiny_dataset)

        cold = RuntimeCache(disk_dir=tmp_path)
        restored = cold.get_profiled(config, tiny_dataset)
        assert cold.hits == 1 and cold.misses == 0
        np.testing.assert_array_equal(restored.matrix, original.matrix)
        assert restored.specs == original.specs

    def test_stale_profiled_entry_invalidated_by_shape(
        self, config, tiny_dataset, tmp_path
    ):
        warm = RuntimeCache(disk_dir=tmp_path)
        warm.get_profiled(config, tiny_dataset)
        (entry,) = tmp_path.glob("profiled-*.npy")
        np.save(entry, np.zeros((2, 2)))  # wrong shape: must be recomputed

        cold = RuntimeCache(disk_dir=tmp_path)
        restored = cold.get_profiled(config, tiny_dataset)
        assert cold.misses == 1
        assert restored.matrix.shape[0] == len(tiny_dataset)

    def test_fitted_round_trip(self, config, tiny_dataset, tmp_path):
        warm = RuntimeCache(disk_dir=tmp_path)
        original = warm.get_fitted(config, tiny_dataset)

        cold = RuntimeCache(disk_dir=tmp_path)
        restored = cold.get_fitted(config, tiny_dataset)
        assert cold.hits == 1 and cold.misses == 0
        np.testing.assert_array_equal(
            restored.analysis.cluster_weights, original.analysis.cluster_weights
        )

    def test_corrupt_model_entry_recomputed(
        self, config, tiny_dataset, tmp_path
    ):
        warm = RuntimeCache(disk_dir=tmp_path)
        warm.get_fitted(config, tiny_dataset)
        (entry,) = tmp_path.glob("model-*.json")
        entry.write_text("{not json")

        cold = RuntimeCache(disk_dir=tmp_path)
        restored = cold.get_fitted(config, tiny_dataset)
        assert cold.misses == 1
        assert restored.analysis.n_clusters == config.analyzer.n_clusters


class TestDefaultCache:
    def test_singleton(self):
        assert default_cache() is default_cache()

    def test_clear_drops_memory(self, config, tiny_dataset):
        cache = RuntimeCache()
        cache.get_profiled(config, tiny_dataset)
        cache.clear()
        cache.get_profiled(config, tiny_dataset)
        assert cache.misses == 2
