"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "dataset.json"
    code = main(
        [
            "simulate",
            "--seed",
            "4",
            "--scenarios",
            "60",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def model_path(dataset_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-model") / "model.json"
    code = main(
        [
            "fit",
            "--dataset",
            str(dataset_path),
            "--clusters",
            "5",
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_feature_rejected(self, model_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--model", str(model_path), "--feature", "nope"]
            )

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestSimulate:
    def test_writes_dataset(self, dataset_path, capsys):
        from repro.io import load_dataset

        dataset = load_dataset(dataset_path)
        assert len(dataset) == 60


class TestFitAndEvaluate:
    def test_model_written(self, model_path):
        from repro.io import load_model

        flare = load_model(model_path)
        assert flare.analysis.n_clusters == 5

    def test_evaluate_all_job(self, model_path, capsys):
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MIPS reduction" in out
        assert "per-group breakdown" in out

    def test_evaluate_per_job(self, model_path, capsys):
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature2",
                "--job",
                "WSC",
            ]
        )
        assert code == 0
        assert "impact on WSC" in capsys.readouterr().out

    def test_evaluate_baseline_is_zero(self, model_path, capsys):
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.00% MIPS reduction" in out


class TestReport:
    def test_report_prints_pcs_and_radar(self, model_path, capsys):
        code = main(["report", "--model", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PC0" in out
        assert "Cluster 0" in out


class TestExperiment:
    def test_experiment_fig07(self, capsys):
        code = main(
            ["experiment", "--figure", "fig07", "--scale", "small",
             "--seed", "5"]
        )
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_evaluate_with_trace_and_summary(self, model_path, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature1",
                "--trace",
                str(trace_path),
                "--obs-summary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MIPS reduction" in out
        assert "flare.evaluate" in out  # span table in the summary
        assert "replays_total" in out  # worker/metric counters in the summary
        assert f"trace written -> {trace_path}" in out
        document = json.loads(trace_path.read_text())
        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert "flare.evaluate" in names
        assert any(n.startswith("dispatch:") for n in names)

    def test_trace_jsonl_round_trips(self, model_path, tmp_path):
        from repro.obs import load_jsonl

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature1",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        spans, metrics = load_jsonl(trace_path)
        assert any(s.name == "flare.evaluate" for s in spans)
        assert metrics is not None
        assert metrics.counter("replays_total") > 0

    def test_runtime_stats_alias(self, model_path, capsys):
        code = main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature1",
                "--runtime-stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flare.evaluate" in out

    def test_tracer_disabled_after_observed_run(self, model_path):
        from repro.obs import get_tracer

        main(
            [
                "evaluate",
                "--model",
                str(model_path),
                "--feature",
                "feature1",
                "--obs-summary",
            ]
        )
        assert not get_tracer().enabled


class TestStoreCommands:
    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-store") / "store"
        code = main(
            [
                "simulate",
                "--seed",
                "4",
                "--scenarios",
                "60",
                "--store",
                str(path),
                "--shard-size",
                "16",
            ]
        )
        assert code == 0
        return path

    def test_simulate_rejects_both_outputs(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "simulate",
                    "--out",
                    str(tmp_path / "d.json"),
                    "--store",
                    str(tmp_path / "s"),
                ]
            )

    def test_simulate_into_store(self, store_dir, dataset_path):
        from repro.io import load_dataset
        from repro.store import ShardedScenarioStore

        store = load_dataset(store_dir)
        assert isinstance(store, ShardedScenarioStore)
        assert store.n_shards == 4
        # Same seed/size as the JSON fixture: identical content.
        assert store.digest() == load_dataset(dataset_path).digest()

    def test_inspect_prints_shards(self, store_dir, capsys):
        code = main(
            ["store", "inspect", "--store", str(store_dir), "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "60 scenarios in 4 shard(s)" in out
        assert "shard-00003" in out
        assert "digests OK" in out

    def test_compact_rewrites_layout(self, store_dir, tmp_path, capsys):
        code = main(
            [
                "store",
                "compact",
                "--store",
                str(store_dir),
                "--out",
                str(tmp_path / "compact"),
                "--shard-size",
                "32",
            ]
        )
        assert code == 0
        assert "4 shard(s) of <= 16 -> 2 shard(s) of <= 32" in (
            capsys.readouterr().out
        )

    def test_fit_accepts_store_directory(self, store_dir, tmp_path, capsys):
        code = main(
            [
                "fit",
                "--dataset",
                str(store_dir),
                "--clusters",
                "5",
                "--out",
                str(tmp_path / "model.json"),
            ]
        )
        assert code == 0
        assert "5 groups" in capsys.readouterr().out


class TestIngestAndDiagnose:
    def test_ingest_from_trace_csv(self, tmp_path, capsys):
        from repro.cluster import TraceEvent, TraceEventType
        from repro.io import load_dataset, write_trace_csv

        trace = tmp_path / "trace.csv"
        write_trace_csv(
            [
                TraceEvent(0.0, 0, "a", TraceEventType.START, "WSC", 0.85),
                TraceEvent(60.0, 0, "b", TraceEventType.START, "GA", 1.0),
                TraceEvent(120.0, 0, "a", TraceEventType.STOP),
                TraceEvent(150.0, 0, "b", TraceEventType.STOP),
            ],
            trace,
        )
        out = tmp_path / "dataset.json"
        code = main(["ingest", "--trace", str(trace), "--out", str(out)])
        assert code == 0
        assert "ingested 3 distinct co-locations" in capsys.readouterr().out
        dataset = load_dataset(out)
        assert len(dataset) == 3

    def test_lenient_ingest_skips_bad_rows(self, tmp_path, capsys):
        from repro.cluster import TraceEvent, TraceEventType
        from repro.io import write_trace_csv

        trace = tmp_path / "trace.csv"
        write_trace_csv(
            [
                TraceEvent(0.0, 0, "a", TraceEventType.START, "WSC", 0.85),
                TraceEvent(1.0, 0, "zz", TraceEventType.STOP),  # orphan
                TraceEvent(50.0, 0, "a", TraceEventType.STOP),
            ],
            trace,
        )
        out = tmp_path / "dataset.json"
        code = main(
            ["ingest", "--trace", str(trace), "--lenient", "--out", str(out)]
        )
        assert code == 0

    def test_diagnose(self, model_path, capsys):
        code = main(["diagnose", "--model", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Representativeness" in out
        assert "loosest group" in out
