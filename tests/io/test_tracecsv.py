"""Unit tests for CSV trace import/export."""

import csv

import pytest

from repro.cluster import DEFAULT_SHAPE, TraceEvent, TraceEventType
from repro.io import (
    dataset_from_trace_csv,
    export_samples_csv,
    read_trace_csv,
    write_trace_csv,
)

START = TraceEventType.START
STOP = TraceEventType.STOP


@pytest.fixture()
def events():
    return [
        TraceEvent(0.0, 0, "a", START, "WSC", 0.85),
        TraceEvent(30.0, 0, "b", START, "GA", 1.0),
        TraceEvent(90.0, 0, "a", STOP),
        TraceEvent(120.0, 0, "b", STOP),
    ]


class TestTraceCsvRoundTrip:
    def test_round_trip(self, events, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_trace_csv(events, path)
        assert n == 4
        back = read_trace_csv(path)
        assert len(back) == 4
        for original, parsed in zip(events, back):
            assert parsed.time_s == pytest.approx(original.time_s)
            assert parsed.machine_id == original.machine_id
            assert parsed.container_id == original.container_id
            assert parsed.event == original.event
            assert parsed.job == original.job
            assert parsed.load == pytest.approx(original.load)

    def test_dataset_from_csv(self, events, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(events, path)
        dataset = dataset_from_trace_csv(path, DEFAULT_SHAPE)
        keys = {s.key for s in dataset.scenarios}
        assert (("GA", 1), ("WSC", 1)) in keys

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,machine_id\n0.0,1\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_trace_csv(path)

    def test_bad_row_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,machine_id,container_id,event,job,load\n"
            "notanumber,0,a,start,WSC,1.0\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            read_trace_csv(path)

    def test_unknown_event_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,machine_id,container_id,event,job,load\n"
            "0.0,0,a,pause,WSC,1.0\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            read_trace_csv(path)


class TestSamplesExport:
    def test_long_format_export(self, tiny_dataset, tmp_path):
        from repro.telemetry import Profiler

        profiled = Profiler(noise_sigma=0.0, seed=1).profile(tiny_dataset)
        path = tmp_path / "samples.csv"
        n = export_samples_csv(profiled, path)
        assert n == profiled.n_scenarios * profiled.n_metrics

        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == n
        first = rows[0]
        assert set(first) == {"scenario_id", "metric", "value"}
        # Spot-check a value against the matrix.
        target = [
            r
            for r in rows
            if r["scenario_id"] == "0" and r["metric"] == "MIPS-Machine"
        ]
        assert len(target) == 1
        assert float(target[0]["value"]) == pytest.approx(
            profiled.column("MIPS-Machine")[0], rel=1e-6
        )
