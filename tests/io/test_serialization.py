"""Unit tests for JSON persistence."""

import json

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.io import (
    config_from_dict,
    config_to_dict,
    dataset_from_dict,
    dataset_to_dict,
    fitted_digest,
    load_dataset,
    load_model,
    save_dataset,
    save_model,
)


class TestDatasetRoundTrip:
    def test_preserves_scenarios(self, tiny_dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(tiny_dataset))
        assert len(rebuilt) == len(tiny_dataset)
        for a, b in zip(tiny_dataset.scenarios, rebuilt.scenarios):
            assert a.key == b.key
            assert a.scenario_id == b.scenario_id
            assert a.total_duration_s == b.total_duration_s
            assert a.n_occurrences == b.n_occurrences

    def test_preserves_instances_exactly(self, tiny_dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(tiny_dataset))
        for a, b in zip(tiny_dataset.scenarios, rebuilt.scenarios):
            for ia, ib in zip(a.instances, b.instances):
                assert ia.signature == ib.signature
                assert ia.load == ib.load

    def test_preserves_shape(self, tiny_dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(tiny_dataset))
        assert rebuilt.shape == tiny_dataset.shape

    def test_weights_unchanged(self, tiny_dataset):
        rebuilt = dataset_from_dict(dataset_to_dict(tiny_dataset))
        np.testing.assert_allclose(rebuilt.weights(), tiny_dataset.weights())

    def test_payload_is_valid_json(self, tiny_dataset):
        payload = json.dumps(dataset_to_dict(tiny_dataset))
        assert json.loads(payload)

    def test_file_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(tiny_dataset, path)
        rebuilt = load_dataset(path)
        assert [s.key for s in rebuilt.scenarios] == [
            s.key for s in tiny_dataset.scenarios
        ]

    def test_version_check(self, tiny_dataset):
        payload = dataset_to_dict(tiny_dataset)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            dataset_from_dict(payload)

    def test_custom_signature_survives(self, tiny_dataset):
        """Signatures are embedded, so non-catalogue jobs round-trip."""
        import dataclasses

        from repro.cluster import ScenarioDataset
        from repro.cluster.scenario import Scenario
        from repro.perfmodel import RunningInstance
        from repro.workloads import HP_JOBS

        custom = dataclasses.replace(
            HP_JOBS["WSC"], name="CUSTOM", base_cpi=0.33
        )
        scenario = Scenario(
            scenario_id=0,
            key=(("CUSTOM", 1),),
            instances=(RunningInstance(signature=custom, load=1.0),),
            n_occurrences=1,
            total_duration_s=60.0,
        )
        dataset = ScenarioDataset(
            shape=tiny_dataset.shape, scenarios=(scenario,)
        )
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        sig = rebuilt.scenarios[0].instances[0].signature
        assert sig.name == "CUSTOM"
        assert sig.base_cpi == 0.33


class TestUnifiedDatasetPersistence:
    """save_dataset/load_dataset dispatch between JSON and store formats."""

    def test_shard_size_selects_store_format(self, tiny_dataset, tmp_path):
        from repro.store import ShardedScenarioStore

        target = tmp_path / "store"
        written = save_dataset(tiny_dataset, target, shard_size=2)
        assert isinstance(written, ShardedScenarioStore)
        assert (target / "manifest.json").exists()

    def test_load_auto_detects_store_directory(self, tiny_dataset, tmp_path):
        from repro.store import ShardedScenarioStore

        target = tmp_path / "store"
        save_dataset(tiny_dataset, target, shard_size=2)
        loaded = load_dataset(target)
        assert isinstance(loaded, ShardedScenarioStore)
        assert loaded.digest() == tiny_dataset.digest()

    def test_store_round_trip_preserves_scenarios(
        self, tiny_dataset, tmp_path
    ):
        save_dataset(tiny_dataset, tmp_path / "store", shard_size=2)
        back = load_dataset(tmp_path / "store").to_dataset()
        for a, b in zip(tiny_dataset.scenarios, back.scenarios):
            assert a.key == b.key
            assert a.total_duration_s == b.total_duration_s
            for ia, ib in zip(a.instances, b.instances):
                assert ia.signature == ib.signature
                assert ia.load == ib.load

    def test_json_path_still_selects_json(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        assert save_dataset(tiny_dataset, path) is None
        assert json.loads(path.read_text())
        from repro.cluster import ScenarioDataset

        assert isinstance(load_dataset(path), ScenarioDataset)

    def test_existing_directory_selects_store(self, tiny_dataset, tmp_path):
        target = tmp_path / "dir"
        target.mkdir()
        save_dataset(tiny_dataset, target)
        assert (target / "manifest.json").exists()


class TestStoreBackedModelPersistence:
    """save_model/load_model for fits over a sharded store."""

    @pytest.fixture(scope="class")
    def store(self, tiny_dataset, tmp_path_factory):
        from repro.store import write_store

        path = tmp_path_factory.mktemp("model-store") / "store"
        return write_store(tiny_dataset, path, shard_size=2)

    @pytest.fixture(scope="class")
    def store_fitted(self, store):
        config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2, seed=1)
        )
        return Flare(config).fit(store)

    def test_model_references_store_not_rows(
        self, store_fitted, store, tmp_path
    ):
        path = tmp_path / "model.json"
        save_model(store_fitted, path)
        payload = json.loads(path.read_text())
        assert "dataset" not in payload
        assert payload["dataset_store"]["content_digest"] == store.digest()

    def test_reload_reproduces_estimates(self, store_fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(store_fitted, path)
        reloaded = load_model(path)
        assert reloaded.evaluate(FEATURE_1_CACHE).reduction_pct == (
            store_fitted.evaluate(FEATURE_1_CACHE).reduction_pct
        )

    def test_reload_detects_changed_store(
        self, store_fitted, tiny_dataset, tmp_path
    ):
        from repro.store import write_store

        from repro.cluster import ScenarioDataset

        path = tmp_path / "model.json"
        save_model(store_fitted, path)
        payload = json.loads(path.read_text())
        # Re-point the model at a store with different content.
        truncated = ScenarioDataset(
            shape=tiny_dataset.shape,
            scenarios=tiny_dataset.scenarios[:3],
        )
        other = write_store(truncated, tmp_path / "other", shard_size=2)
        payload["dataset_store"]["path"] = str(other.path)
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="digest"):
            load_model(path)


class TestConfigRoundTrip:
    def test_default_config(self):
        config = FlareConfig()
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config

    def test_custom_config(self):
        config = FlareConfig(
            refinement_threshold=0.9,
            noise_sigma=0.05,
            profiler_seed=99,
            analyzer=AnalyzerConfig(
                n_clusters=7,
                n_components=4,
                cluster_counts=(2, 3),
                kmeans_restarts=3,
                seed=5,
            ),
        )
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config


class TestModelRoundTrip:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset):
        config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2, seed=1)
        )
        return Flare(config).fit(tiny_dataset)

    def test_save_load_reproduces_estimates(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        reloaded = load_model(path)
        assert reloaded.evaluate(FEATURE_1_CACHE).reduction_pct == (
            fitted.evaluate(FEATURE_1_CACHE).reduction_pct
        )

    def test_digest_stable(self, fitted):
        assert fitted_digest(fitted) == fitted_digest(fitted)

    def test_digest_detects_different_fit(self, fitted, tiny_dataset):
        other = Flare(
            FlareConfig(
                analyzer=AnalyzerConfig(
                    n_clusters=3, kmeans_restarts=2, seed=1
                )
            )
        ).fit(tiny_dataset)
        assert fitted_digest(other) != fitted_digest(fitted)

    def test_verification_failure_raises(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        payload = json.loads(path.read_text())
        payload["fitted_digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="does not reproduce"):
            load_model(path)
        # verify=False skips the check.
        assert load_model(path, verify=False) is not None

    def test_version_check(self, fitted, tmp_path):
        path = tmp_path / "model.json"
        save_model(fitted, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_model(path)
