"""Differential equivalence battery: batched solver vs scalar reference.

The batched solver promises *bit-identity* with the scalar fixed point
(see :mod:`repro.perfmodel.batch`), which is strictly stronger than the
1e-9 agreement the acceptance criteria demand — so every comparison
here asserts exact float equality on all per-instance outputs (IPC,
MIPS, the full CPI stack, cache shares, miss ratios, bandwidth) and on
the machine-wide latency/utilisation summary.  Populations come from
hypothesis plus hand-built edge cases: single job, all-LP, saturated
bandwidth, zero-APKI signatures, empty scenarios, ragged batches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.features import BASELINE, PAPER_FEATURES
from repro.cluster.machine import DEFAULT_SHAPE
from repro.perfmodel import (
    MachinePerf,
    MissRatioCurve,
    RunningInstance,
    ScenarioBatch,
    solve_colocation,
    solve_colocation_batch,
    solve_colocation_many,
)
from repro.perfmodel.batch import resolve_solver_mode
from repro.perfmodel.signatures import JobSignature, Priority
from repro.workloads import HP_JOBS, LP_JOBS

CATALOGUE = {**HP_JOBS, **LP_JOBS}
_ALL_JOBS = sorted(CATALOGUE)
_LP_ONLY = sorted(LP_JOBS)

_INSTANCE_FIELDS = (
    "mips",
    "ipc",
    "busy_threads",
    "cache_share_mb",
    "llc_miss_ratio",
    "llc_mpki",
    "dram_gbps",
    "network_gbps",
    "disk_mbps",
    "frequency_ghz",
)
_STACK_FIELDS = ("base", "frontend", "branch", "l2", "llc_hit", "dram", "smt")


def build(mix):
    return [
        RunningInstance(signature=CATALOGUE[name], load=load)
        for name, load in mix
    ]


def assert_solutions_identical(scalar, batched):
    """Assert the batched solution reproduces the scalar one bit for bit."""
    assert batched.converged == scalar.converged
    # Acceptance criterion: same iteration count or fewer.  (In practice
    # the batched loop replays the scalar schedule exactly, so equal.)
    assert batched.iterations <= scalar.iterations
    assert batched.cpu_utilization == scalar.cpu_utilization
    assert batched.mem_bw_utilization == scalar.mem_bw_utilization
    assert batched.mem_latency_ns == scalar.mem_latency_ns
    assert len(batched.instances) == len(scalar.instances)
    for b, s in zip(batched.instances, scalar.instances):
        assert b.job_name == s.job_name
        assert b.priority is s.priority
        for field in _INSTANCE_FIELDS:
            assert getattr(b, field) == getattr(s, field), (
                f"{s.job_name}.{field}: {getattr(b, field)!r} "
                f"!= {getattr(s, field)!r}"
            )
        for field in _STACK_FIELDS:
            assert getattr(b.cpi_stack, field) == getattr(
                s.cpi_stack, field
            ), f"{s.job_name}.cpi_stack.{field}"


def assert_batch_matches_scalar(machine, population):
    scalar = [solve_colocation(machine, instances) for instances in population]
    batched = solve_colocation_batch(machine, population)
    assert len(batched) == len(scalar)
    for s, b in zip(scalar, batched):
        assert_solutions_identical(s, b)
    return scalar, batched


job_mixes = st.lists(
    st.tuples(
        st.sampled_from(_ALL_JOBS),
        st.floats(min_value=0.3, max_value=1.0),
    ),
    min_size=1,
    max_size=16,
)

populations = st.lists(job_mixes, min_size=1, max_size=8)

machines = st.builds(
    MachinePerf,
    llc_mb=st.floats(min_value=8.0, max_value=120.0),
    max_freq_ghz=st.floats(min_value=1.3, max_value=3.8),
    smt_enabled=st.booleans(),
    mem_bw_gbps=st.floats(min_value=25.0, max_value=200.0),
)


class TestHypothesisPopulations:
    @settings(max_examples=50, deadline=None)
    @given(machines, populations)
    def test_batched_reproduces_scalar_bitwise(self, machine, pop):
        assert_batch_matches_scalar(machine, [build(mix) for mix in pop])

    @settings(max_examples=30, deadline=None)
    @given(populations)
    def test_equivalence_on_all_paper_feature_machines(self, pop):
        population = [build(mix) for mix in pop]
        for feature in (BASELINE, *PAPER_FEATURES):
            assert_batch_matches_scalar(
                feature(DEFAULT_SHAPE.perf), population
            )

    @settings(max_examples=30, deadline=None)
    @given(machines, populations)
    def test_iteration_counts_match(self, machine, pop):
        population = [build(mix) for mix in pop]
        scalar = [solve_colocation(machine, inst) for inst in population]
        batched = solve_colocation_batch(machine, population)
        # Bit-identical rates require replaying the exact damping
        # schedule, so the counts are not merely bounded — they agree.
        assert [b.iterations for b in batched] == [
            s.iterations for s in scalar
        ]


class TestEdgeCases:
    def test_single_job_scenarios(self):
        population = [
            [RunningInstance(signature=CATALOGUE[name], load=1.0)]
            for name in _ALL_JOBS
        ]
        assert_batch_matches_scalar(MachinePerf(), population)

    def test_all_lp_population(self):
        population = [
            build([(name, 0.5 + 0.5 * (i % 2)) for name in _LP_ONLY[: i + 1]])
            for i in range(len(_LP_ONLY))
        ]
        assert_batch_matches_scalar(MachinePerf(), population)

    def test_saturated_bandwidth_hits_util_cap(self):
        # A starved memory system pushes raw utilisation past the 0.95
        # cap; both solvers must walk the capped-latency branch the same
        # way.
        machine = MachinePerf(mem_bw_gbps=8.0)
        heavy = [
            build([("mcf", 1.0)] * 12),
            build([("libquantum", 1.0)] * 16),
            build([("mcf", 1.0), ("libquantum", 1.0)] * 8),
        ]
        scalar, _ = assert_batch_matches_scalar(machine, heavy)
        assert any(sol.mem_bw_utilization > 0.95 for sol in scalar)

    def test_zero_apki_job(self):
        # A pure-compute signature never touches the LLC: total access
        # rate can be zero, exercising the keep-previous-shares branch.
        compute = JobSignature(
            name="spin",
            description="pure-compute synthetic",
            priority=Priority.LOW,
            vcpus=4,
            dram_gb=8.0,
            base_cpi=0.6,
            frontend_cpi=0.1,
            branch_mpki=0.0,
            l1i_apki=0.0,
            l1d_apki=0.0,
            l2_apki=0.0,
            llc_apki=0.0,
            mrc=MissRatioCurve(half_capacity_mb=4.0),
            mem_blocking_factor=0.5,
        )
        population = [
            [RunningInstance(signature=compute, load=1.0)],
            [RunningInstance(signature=compute, load=0.7)] * 3,
            [
                RunningInstance(signature=compute, load=1.0),
                RunningInstance(signature=CATALOGUE["mcf"], load=1.0),
            ],
        ]
        assert_batch_matches_scalar(MachinePerf(), population)

    def test_empty_scenario_in_batch(self):
        population = [build([("DA", 1.0)]), [], build([("mcf", 0.5)])]
        scalar, batched = assert_batch_matches_scalar(
            MachinePerf(), population
        )
        assert batched[1].instances == ()
        assert batched[1].converged
        assert batched[1].iterations == 0
        assert batched[1].mem_latency_ns == MachinePerf().mem_latency_ns

    def test_all_empty_batch(self):
        batched = solve_colocation_batch(MachinePerf(), [[], []])
        assert all(sol.instances == () for sol in batched)

    def test_ragged_batch_padding_is_invisible(self):
        # A 1-instance row padded to 16 lanes must not perturb sums.
        population = [
            build([("WSC", 1.0)]),
            build([("mcf", 1.0)] * 16),
            build([("DC", 0.85), ("GA", 0.6)]),
        ]
        assert_batch_matches_scalar(MachinePerf(), population)
        # Each row must also match its solo (unpadded) batch solve.
        per_row = [
            solve_colocation_batch(MachinePerf(), [instances])[0]
            for instances in population
        ]
        batched = solve_colocation_batch(MachinePerf(), population)
        for solo, row in zip(per_row, batched):
            assert_solutions_identical(solo, row)

    def test_ondemand_governor_machines(self):
        machine = MachinePerf(governor="ondemand")
        population = [build([("DA", 1.0), ("mcf", 0.8)]), build([("WSV", 0.4)])]
        assert_batch_matches_scalar(machine, population)


class TestScenarioBatchLayout:
    def test_signature_table_is_deduplicated(self):
        population = [
            build([("DA", 1.0), ("DA", 0.5), ("mcf", 1.0)]),
            build([("DA", 0.7), ("mcf", 0.9)]),
        ]
        batch = ScenarioBatch.from_instances(population)
        assert len(batch.signatures) == 2
        assert len(batch) == 2
        assert batch.sig_params.shape == (11, 2)
        assert batch.sig_index.shape == (2, 3)
        assert batch.mask.tolist() == [[True, True, True], [True, True, False]]
        assert batch.counts.tolist() == [3, 2]
        assert batch.loads[1, 2] == 0.0

    def test_prebuilt_batch_and_sequence_agree(self):
        population = [build([("DC", 1.0)]), build([("GA", 0.8), ("IA", 0.6)])]
        from_seq = solve_colocation_batch(MachinePerf(), population)
        from_batch = solve_colocation_batch(
            MachinePerf(), ScenarioBatch.from_instances(population)
        )
        for a, b in zip(from_seq, from_batch):
            assert_solutions_identical(a, b)


class TestSolverModeDispatch:
    def test_resolve_solver_mode(self):
        assert resolve_solver_mode("scalar", 100) == "scalar"
        assert resolve_solver_mode("batched", 1) == "batched"
        assert resolve_solver_mode("auto", 1) == "scalar"
        assert resolve_solver_mode("auto", 2) == "batched"
        with pytest.raises(ValueError, match="unknown solver"):
            resolve_solver_mode("vectorised", 2)

    def test_many_agrees_across_modes(self):
        machine = MachinePerf()
        population = [build([("DA", 1.0), ("mcf", 0.9)]), build([("WSC", 0.7)])]
        scalar = solve_colocation_many(machine, population, solver="scalar")
        batched = solve_colocation_many(machine, population, solver="batched")
        auto = solve_colocation_many(machine, population, solver="auto")
        for s, b, a in zip(scalar, batched, auto):
            assert_solutions_identical(s, b)
            assert_solutions_identical(s, a)

    def test_many_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown solver"):
            solve_colocation_many(MachinePerf(), [build([("DA", 1.0)])],
                                  solver="fast")


class TestEndToEndEquivalence:
    """The routed callers agree across solver modes and executors."""

    def _feature(self):
        return PAPER_FEATURES[0]

    def test_profiler_matrix_identical_across_solvers(self, tiny_dataset):
        from repro.telemetry import Profiler

        matrices = {}
        for solver in ("scalar", "batched"):
            profiled = Profiler(seed=11, solver=solver).profile(tiny_dataset)
            matrices[solver] = profiled.matrix
        assert (matrices["scalar"] == matrices["batched"]).all()

    def test_profiler_process_executor_identical(self, tiny_dataset):
        from repro.runtime import ProcessExecutor
        from repro.telemetry import Profiler

        serial = Profiler(seed=11, solver="batched").profile(tiny_dataset)
        with ProcessExecutor(max_workers=2) as pool:
            parallel = Profiler(seed=11, solver="batched").profile(
                tiny_dataset, runtime=pool
            )
        assert (serial.matrix == parallel.matrix).all()

    def test_replayer_identical_across_solvers_and_executors(
        self, tiny_dataset
    ):
        from repro.core.replayer import Replayer
        from repro.runtime import ProcessExecutor

        feature = self._feature()
        scenarios = tiny_dataset.scenarios
        results = {}
        for solver in ("scalar", "batched"):
            replayer = Replayer(tiny_dataset.shape, solver=solver)
            results[solver] = replayer.replay_many(scenarios, feature)
        with ProcessExecutor(max_workers=2) as pool:
            replayer = Replayer(tiny_dataset.shape, solver="batched")
            results["process"] = replayer.replay_many(
                scenarios, feature, executor=pool
            )
        reference = [m.reduction_pct for m in results["scalar"]]
        for key in ("batched", "process"):
            assert [m.reduction_pct for m in results[key]] == reference
            for ref, got in zip(results["scalar"], results[key]):
                assert got.baseline.overall == ref.baseline.overall
                assert got.enabled.overall == ref.enabled.overall
                assert got.baseline.per_job == ref.baseline.per_job

    def test_full_datacenter_truth_identical(self, tiny_dataset):
        from repro.baselines import evaluate_full_datacenter

        feature = self._feature()
        scalar = evaluate_full_datacenter(
            tiny_dataset, feature, solver="scalar"
        )
        batched = evaluate_full_datacenter(
            tiny_dataset, feature, solver="batched"
        )
        assert scalar.overall_reduction_pct == batched.overall_reduction_pct
        assert scalar.per_job == batched.per_job
        assert (scalar.reductions_pct == batched.reductions_pct).all()
