"""Unit tests for the contention solver: each sharing mechanism behaves
the way the corresponding feature needs it to."""

import pytest

from repro.perfmodel import (
    MachinePerf,
    RunningInstance,
    inherent_performance,
    solve_colocation,
    solve_colocation_cached,
)
from repro.workloads import HP_JOBS, LP_JOBS


@pytest.fixture()
def machine():
    return MachinePerf()


def insts(*names, load=1.0):
    catalogue = {**HP_JOBS, **LP_JOBS}
    return [RunningInstance(signature=catalogue[n], load=load) for n in names]


class TestBasics:
    def test_empty_machine(self, machine):
        sol = solve_colocation(machine, [])
        assert sol.total_mips == 0.0
        assert sol.cpu_utilization == 0.0
        assert sol.converged

    def test_single_job_converges(self, machine):
        sol = solve_colocation(machine, insts("WSC"))
        assert sol.converged
        assert sol.instances[0].mips > 0.0

    def test_solution_aligned_with_inputs(self, machine):
        instances = insts("WSC", "mcf", "DC")
        sol = solve_colocation(machine, instances)
        assert [i.job_name for i in sol.instances] == ["WSC", "mcf", "DC"]

    def test_hp_mips_counts_only_hp(self, machine):
        sol = solve_colocation(machine, insts("WSC", "mcf"))
        hp = [i for i in sol.instances if i.is_high_priority]
        assert sol.hp_mips == pytest.approx(sum(i.mips for i in hp))
        assert sol.hp_mips < sol.total_mips

    def test_per_job_mips_sums_instances(self, machine):
        sol = solve_colocation(machine, insts("WSC", "WSC"))
        per_job = sol.per_job_mips()
        assert per_job["WSC"] == pytest.approx(sol.total_mips)

    def test_cache_shares_sum_to_llc(self, machine):
        sol = solve_colocation(machine, insts("WSC", "GA", "mcf"))
        total_share = sum(i.cache_share_mb for i in sol.instances)
        assert total_share == pytest.approx(machine.llc_mb, rel=1e-6)

    def test_load_scales_throughput(self, machine):
        full = solve_colocation(machine, insts("IA", load=1.0))
        half = solve_colocation(machine, insts("IA", load=0.5))
        assert half.instances[0].mips < full.instances[0].mips


class TestCacheContention:
    def test_colocation_raises_miss_ratio(self, machine):
        alone = inherent_performance(machine, HP_JOBS["WSC"])
        crowded = solve_colocation(
            machine, insts("WSC", "mcf", "mcf", "GA", "omnetpp")
        )
        wsc = crowded.instances[0]
        assert wsc.llc_miss_ratio > alone.llc_miss_ratio
        assert wsc.mips < alone.mips

    def test_smaller_llc_hurts_cache_sensitive_job(self, machine):
        instances = insts("WSC", "GA", "DS")
        base = solve_colocation(machine, instances)
        small = solve_colocation(machine.with_llc_mb(24.0), instances)
        for b, s in zip(base.instances, small.instances):
            assert s.llc_mpki > b.llc_mpki
            assert s.mips < b.mips

    def test_streaming_job_insensitive_to_llc(self, machine):
        base = solve_colocation(machine, insts("libquantum"))
        small = solve_colocation(machine.with_llc_mb(24.0), insts("libquantum"))
        reduction = 1.0 - small.instances[0].mips / base.instances[0].mips
        assert reduction < 0.05

    def test_cache_sensitive_job_hurts_more_than_streaming(self, machine):
        instances = insts("WSC", "libquantum")
        base = solve_colocation(machine, instances)
        small = solve_colocation(machine.with_llc_mb(12.0), instances)
        red = [
            1.0 - s.mips / b.mips
            for b, s in zip(base.instances, small.instances)
        ]
        assert red[0] > red[1]


class TestBandwidthContention:
    def test_bandwidth_hogs_inflate_latency(self, machine):
        light = solve_colocation(machine, insts("WSC"))
        heavy = solve_colocation(
            machine, insts("WSC", "libquantum", "libquantum", "mcf", "mcf")
        )
        assert heavy.mem_latency_ns > light.mem_latency_ns
        assert heavy.mem_bw_utilization > light.mem_bw_utilization

    def test_victim_slows_under_bandwidth_pressure(self, machine):
        alone = inherent_performance(machine, LP_JOBS["omnetpp"])
        pressured = solve_colocation(
            machine, insts("omnetpp", "libquantum", "libquantum", "libquantum")
        )
        assert pressured.instances[0].mips < alone.mips


class TestFrequencyScaling:
    def test_lower_freq_reduces_throughput(self, machine):
        base = solve_colocation(machine, insts("sjeng"))
        slow = solve_colocation(machine.with_max_freq_ghz(1.8), insts("sjeng"))
        assert slow.instances[0].mips < base.instances[0].mips

    def test_compute_bound_hurts_more_than_memory_bound(self, machine):
        instances = insts("sjeng", "mcf")
        base = solve_colocation(machine, instances)
        slow = solve_colocation(machine.with_max_freq_ghz(1.8), instances)
        red = [
            1.0 - s.mips / b.mips
            for b, s in zip(base.instances, slow.instances)
        ]
        assert red[0] > red[1]  # sjeng (compute) > mcf (memory)

    def test_compute_job_scales_almost_linearly(self, machine):
        base = solve_colocation(machine, insts("sjeng"))
        slow = solve_colocation(machine.with_max_freq_ghz(1.8), insts("sjeng"))
        ratio = slow.instances[0].mips / base.instances[0].mips
        assert ratio == pytest.approx(1.8 / 2.9, abs=0.05)


class TestSMT:
    def test_no_penalty_when_underloaded(self, machine):
        # 2 containers = at most 8 busy threads on 24 cores.
        instances = insts("IA", "GA")
        with_smt = solve_colocation(machine, instances)
        without = solve_colocation(machine.with_smt(False), instances)
        for a, b in zip(with_smt.instances, without.instances):
            assert a.mips == pytest.approx(b.mips, rel=1e-6)

    def test_penalty_when_oversubscribed(self, machine):
        # 12 LP containers = 48 busy threads on 24 cores.
        instances = insts(*["sjeng"] * 12)
        with_smt = solve_colocation(machine, instances)
        without = solve_colocation(machine.with_smt(False), instances)
        assert without.total_mips < with_smt.total_mips

    def test_memory_bound_less_smt_sensitive(self, machine):
        instances = insts(*["sjeng"] * 6, *["mcf"] * 6)
        with_smt = solve_colocation(machine, instances)
        without = solve_colocation(machine.with_smt(False), instances)
        red = [
            1.0 - b.mips / a.mips
            for a, b in zip(with_smt.instances, without.instances)
        ]
        sjeng_red = sum(red[:6]) / 6
        mcf_red = sum(red[6:]) / 6
        assert sjeng_red > mcf_red


class TestInherentPerformance:
    def test_alone_beats_crowded(self, machine):
        for name in ("WSC", "GA", "mcf"):
            sig = {**HP_JOBS, **LP_JOBS}[name]
            alone = inherent_performance(machine, sig)
            crowd = solve_colocation(
                machine, insts(name, "mcf", "libquantum", "GA", "DS")
            )
            assert crowd.instances[0].mips <= alone.mips + 1e-6

    def test_all_catalogue_jobs_have_positive_inherent(self, machine):
        for sig in {**HP_JOBS, **LP_JOBS}.values():
            perf = inherent_performance(machine, sig)
            assert perf.mips > 0.0
            assert 0.0 < perf.ipc < 4.0


class TestCaching:
    def test_cached_matches_uncached(self, machine):
        instances = tuple(insts("WSC", "mcf"))
        a = solve_colocation_cached(machine, instances)
        b = solve_colocation(machine, list(instances))
        assert a.total_mips == pytest.approx(b.total_mips)

    def test_cache_returns_same_object(self, machine):
        instances = tuple(insts("DC"))
        assert solve_colocation_cached(machine, instances) is (
            solve_colocation_cached(machine, instances)
        )


class TestRunningInstance:
    def test_busy_threads(self):
        inst = RunningInstance(signature=HP_JOBS["GA"], load=0.5)
        expected = 4 * HP_JOBS["GA"].active_fraction * 0.5
        assert inst.busy_threads == pytest.approx(expected)

    def test_invalid_load_raises(self):
        with pytest.raises(ValueError):
            RunningInstance(signature=HP_JOBS["GA"], load=0.0)
        with pytest.raises(ValueError):
            RunningInstance(signature=HP_JOBS["GA"], load=1.1)
