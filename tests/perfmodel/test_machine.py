"""Unit tests for the machine performance description."""

import pytest

from repro.perfmodel import MachinePerf


class TestMachinePerf:
    def test_defaults_are_table2(self):
        m = MachinePerf()
        assert m.physical_cores == 24
        assert m.hardware_threads == 48
        assert m.llc_mb == 60.0
        assert m.max_freq_ghz == 2.9
        assert m.smt_enabled

    def test_with_llc(self):
        m = MachinePerf().with_llc_mb(24.0)
        assert m.llc_mb == 24.0
        assert m.max_freq_ghz == MachinePerf().max_freq_ghz

    def test_with_max_freq(self):
        m = MachinePerf().with_max_freq_ghz(1.8)
        assert m.max_freq_ghz == 1.8

    def test_with_smt(self):
        m = MachinePerf().with_smt(False)
        assert not m.smt_enabled
        # Shape (hardware threads) is preserved.
        assert m.hardware_threads == 48

    def test_hashable_for_caching(self):
        assert hash(MachinePerf()) == hash(MachinePerf())
        assert MachinePerf() != MachinePerf().with_smt(False)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"physical_cores": 0},
            {"smt_speedup": 0.9},
            {"smt_speedup": 2.5},
            {"min_freq_ghz": 0.0},
            {"min_freq_ghz": 3.0, "max_freq_ghz": 2.0},
            {"llc_mb": 0.0},
            {"mem_bw_gbps": -1.0},
            {"mem_latency_ns": 0.0},
            {"network_gbps": 0.0},
            {"disk_mbps": 0.0},
        ],
    )
    def test_invalid_params_raise(self, kwargs):
        with pytest.raises(ValueError):
            MachinePerf(**kwargs)

    def test_freq_reduction_below_min_raises(self):
        with pytest.raises(ValueError):
            MachinePerf().with_max_freq_ghz(0.5)
