"""Unit tests for miss-ratio curves."""

import pytest

from repro.perfmodel import MissRatioCurve


class TestMissRatioCurve:
    def test_zero_cache_misses_everything(self):
        mrc = MissRatioCurve(half_capacity_mb=8.0, floor=0.05)
        assert mrc.miss_ratio(0.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        mrc = MissRatioCurve(half_capacity_mb=8.0)
        sizes = [0.0, 1.0, 4.0, 8.0, 16.0, 64.0]
        ratios = [mrc.miss_ratio(s) for s in sizes]
        assert ratios == sorted(ratios, reverse=True)

    def test_floor_is_asymptote(self):
        mrc = MissRatioCurve(half_capacity_mb=2.0, shape=2.0, floor=0.12)
        assert mrc.miss_ratio(1e6) == pytest.approx(0.12, abs=1e-4)
        assert mrc.miss_ratio(1e6) >= 0.12

    def test_half_capacity_semantics(self):
        mrc = MissRatioCurve(half_capacity_mb=10.0, shape=1.0, floor=0.0)
        assert mrc.miss_ratio(10.0) == pytest.approx(0.5)

    def test_steeper_shape_drops_faster(self):
        shallow = MissRatioCurve(half_capacity_mb=8.0, shape=0.5, floor=0.0)
        steep = MissRatioCurve(half_capacity_mb=8.0, shape=2.0, floor=0.0)
        assert steep.miss_ratio(16.0) < shallow.miss_ratio(16.0)

    def test_bounded_in_unit_interval(self):
        mrc = MissRatioCurve(half_capacity_mb=5.0, shape=1.3, floor=0.3)
        for cache in (0.0, 0.1, 5.0, 500.0):
            assert 0.0 <= mrc.miss_ratio(cache) <= 1.0

    def test_marginal_utility_positive_and_decreasing(self):
        mrc = MissRatioCurve(half_capacity_mb=8.0)
        u1 = mrc.marginal_utility(1.0)
        u2 = mrc.marginal_utility(20.0)
        assert u1 > u2 > 0.0

    def test_negative_cache_raises(self):
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=8.0).miss_ratio(-1.0)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=0.0)
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=1.0, shape=0.0)
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=1.0, floor=1.0)
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=1.0, floor=-0.1)

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            MissRatioCurve(half_capacity_mb=1.0).marginal_utility(1.0, delta_mb=0.0)
