"""Golden fixture for the solve-memo serialisation format.

Freezes everything a persisted memo's bytes depend on, so format drift
is caught bit-for-bit against a committed artefact:

* the canonical :func:`solve_key` digests for a deterministic
  signature × machine grid (key-schema drift — a reordered field, a
  changed float token — changes every digest);
* the segment dtype descriptors (layout drift);
* the sha256 of the encoded entry/instance tables per machine
  (byte-level encoding drift);
* the full decoded round trip (a hit returns the bits that went in).

Regenerate after an *intentional* format-version bump with::

    pytest tests/perfmodel/test_memo_golden.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perfmodel.memo import (
    MEMO_ENTRY_DTYPE,
    MEMO_FORMAT,
    MEMO_FORMAT_VERSION,
    MEMO_INSTANCE_DTYPE,
    decode_memo_entries,
    encode_memo_entries,
    solve_key,
)
from repro.store.format import array_digest
from tests.perfmodel.test_batch_golden import (
    _MACHINES,
    _build,
    golden_population,
)
from tests.perfmodel.test_memo import assert_bit_identical

from repro.perfmodel.contention import solve_colocation

GOLDEN_PATH = Path(__file__).parent / "golden" / "memo_golden.json"


def _machine_cases():
    population = golden_population()
    for machine_name, machine in sorted(_MACHINES.items()):
        scenarios = [_build(mix) for mix in population]
        items = [
            (solve_key(machine, instances), solve_colocation(machine, instances))
            for instances in scenarios
        ]
        yield machine_name, machine, scenarios, items


def generate_golden() -> dict:
    machines = []
    for machine_name, _machine, _scenarios, items in _machine_cases():
        entries, instances = encode_memo_entries(items)
        machines.append(
            {
                "machine": machine_name,
                "keys": [key for key, _ in items],
                "entries_digest": array_digest(entries),
                "instances_digest": array_digest(instances),
            }
        )
    return {
        "format": MEMO_FORMAT,
        "format_version": MEMO_FORMAT_VERSION,
        "entry_dtype": MEMO_ENTRY_DTYPE.descr,
        "instance_dtype": MEMO_INSTANCE_DTYPE.descr,
        "machines": machines,
    }


@pytest.fixture(scope="module")
def golden(request):
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(generate_golden(), indent=1) + "\n"
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing — run with --update-golden to create it"
        )
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_format_and_layout_are_current(golden):
    assert golden["format"] == MEMO_FORMAT
    assert golden["format_version"] == MEMO_FORMAT_VERSION
    assert [tuple(item) for item in golden["entry_dtype"]] == list(
        MEMO_ENTRY_DTYPE.descr
    )
    assert [tuple(item) for item in golden["instance_dtype"]] == list(
        MEMO_INSTANCE_DTYPE.descr
    )


def test_memo_serialisation_reproduces_golden(golden):
    frozen = {record["machine"]: record for record in golden["machines"]}
    assert set(frozen) == set(_MACHINES)
    for machine_name, _machine, _scenarios, items in _machine_cases():
        record = frozen[machine_name]
        assert [key for key, _ in items] == record["keys"], machine_name
        entries, instances = encode_memo_entries(items)
        assert array_digest(entries) == record["entries_digest"], machine_name
        assert (
            array_digest(instances) == record["instances_digest"]
        ), machine_name


def test_golden_entries_decode_round_trip(golden):
    for machine_name, machine, scenarios, items in _machine_cases():
        entries, rows = encode_memo_entries(items)
        for index, (instances, (_key, solution)) in enumerate(
            zip(scenarios, items)
        ):
            entry = entries[index]
            start = int(entry["inst_offset"])
            stop = start + int(entry["inst_count"])
            decoded = decode_memo_entries(
                machine, instances, entry, rows[start:stop]
            )
            assert decoded is not None
            assert_bit_identical(
                solution, decoded, f"{machine_name}[{index}]"
            )
