"""Unit tests for the DVFS governor policies."""

import pytest

from repro.cluster import Feature
from repro.perfmodel import MachinePerf, RunningInstance, solve_colocation
from repro.workloads import HP_JOBS, LP_JOBS


def insts(*names, load=1.0):
    catalogue = {**HP_JOBS, **LP_JOBS}
    return [RunningInstance(catalogue[n], load=load) for n in names]


class TestEffectiveFrequency:
    def test_performance_governor_always_max(self):
        m = MachinePerf()
        for busy in (0.0, 5.0, 24.0, 48.0):
            assert m.effective_frequency_ghz(busy) == m.max_freq_ghz

    def test_ondemand_scales_with_utilisation(self):
        m = MachinePerf(governor="ondemand")
        assert m.effective_frequency_ghz(0.0) == pytest.approx(m.min_freq_ghz)
        half = m.effective_frequency_ghz(12.0)  # 12 of 24 cores
        assert half == pytest.approx(
            m.min_freq_ghz + 0.5 * (m.max_freq_ghz - m.min_freq_ghz)
        )
        assert m.effective_frequency_ghz(24.0) == pytest.approx(
            m.max_freq_ghz
        )

    def test_ondemand_saturates_at_max(self):
        m = MachinePerf(governor="ondemand")
        assert m.effective_frequency_ghz(48.0) == pytest.approx(
            m.max_freq_ghz
        )

    def test_unknown_governor_rejected(self):
        with pytest.raises(ValueError, match="unknown governor"):
            MachinePerf(governor="turbo")

    def test_with_governor(self):
        m = MachinePerf().with_governor("ondemand")
        assert m.governor == "ondemand"
        assert MachinePerf().governor == "performance"


class TestOndemandSolutions:
    def test_light_load_runs_slower(self):
        perf = solve_colocation(MachinePerf(), insts("IA"))
        ondemand = solve_colocation(
            MachinePerf(governor="ondemand"), insts("IA")
        )
        assert ondemand.instances[0].mips < perf.instances[0].mips
        assert ondemand.instances[0].frequency_ghz < (
            perf.instances[0].frequency_ghz
        )

    def test_saturated_machine_matches_performance_governor(self):
        # 12 LP containers keep all 24 cores busy -> ondemand == max.
        instances = insts(*["sjeng"] * 12)
        perf = solve_colocation(MachinePerf(), instances)
        ondemand = solve_colocation(
            MachinePerf(governor="ondemand"), instances
        )
        assert ondemand.total_mips == pytest.approx(
            perf.total_mips, rel=1e-9
        )

    def test_governor_switch_as_feature(self):
        """An ondemand rollout is a shape-preserving software feature —
        exactly FLARE's target class."""
        feature = Feature(
            name="ondemand-governor",
            description="switch the fleet to the ondemand governor",
            apply=lambda m: m.with_governor("ondemand"),
        )
        machine = feature(MachinePerf())
        assert machine.governor == "ondemand"
        assert machine.hardware_threads == MachinePerf().hardware_threads

    def test_memory_bound_jobs_less_hurt_by_ondemand(self):
        instances = insts("sjeng", "mcf")
        perf = solve_colocation(MachinePerf(), instances)
        ondemand = solve_colocation(
            MachinePerf(governor="ondemand"), instances
        )
        reductions = [
            1.0 - o.mips / p.mips
            for p, o in zip(perf.instances, ondemand.instances)
        ]
        assert reductions[0] > reductions[1]  # compute > memory bound
