"""Golden regression fixtures for the contention solver.

A small deterministic scenario population is solved on a handful of
machine configurations and the full numeric output frozen into
``tests/perfmodel/golden/contention_golden.json``.  Both solver paths
must reproduce the committed numbers **bit for bit** — JSON stores each
double via ``repr``, which round-trips exactly — so any change to the
fixed point's arithmetic (constants, association order, damping
schedule) shows up as a diff against a committed artefact rather than a
silent drift.

Regenerate after an *intentional* model change with::

    pytest tests/perfmodel/test_batch_golden.py --update-golden
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.perfmodel import (
    MachinePerf,
    RunningInstance,
    solve_colocation,
    solve_colocation_batch,
)
from repro.workloads import HP_JOBS, LP_JOBS

GOLDEN_PATH = Path(__file__).parent / "golden" / "contention_golden.json"

_CATALOGUE = {**HP_JOBS, **LP_JOBS}

_MACHINES = {
    "baseline": MachinePerf(),
    "small_llc": MachinePerf(llc_mb=24.0),
    "low_freq": MachinePerf(max_freq_ghz=1.8),
    "smt_off": MachinePerf(smt_enabled=False),
    "narrow_bw": MachinePerf(mem_bw_gbps=20.0),
}

_INSTANCE_FIELDS = (
    "mips",
    "ipc",
    "busy_threads",
    "cache_share_mb",
    "llc_miss_ratio",
    "llc_mpki",
    "dram_gbps",
    "network_gbps",
    "disk_mbps",
    "frequency_ghz",
)
_STACK_FIELDS = ("base", "frontend", "branch", "l2", "llc_hit", "dram", "smt")


def golden_population() -> list[list[tuple[str, float]]]:
    """Deterministic (job name, load) mixes — independent of the solver."""
    rng = random.Random(20268)
    names = sorted(_CATALOGUE)
    population = [[(name, 1.0)] for name in (names[0], "mcf")]
    for size in (2, 3, 4, 6, 6, 8):
        population.append(
            [(rng.choice(names), rng.uniform(0.3, 1.0)) for _ in range(size)]
        )
    return population


def _build(mix):
    return [
        RunningInstance(signature=_CATALOGUE[name], load=load)
        for name, load in mix
    ]


def _solution_record(solution) -> dict:
    return {
        "converged": solution.converged,
        "iterations": solution.iterations,
        "cpu_utilization": solution.cpu_utilization,
        "mem_bw_utilization": solution.mem_bw_utilization,
        "mem_latency_ns": solution.mem_latency_ns,
        "instances": [
            {
                "job": inst.job_name,
                **{field: getattr(inst, field) for field in _INSTANCE_FIELDS},
                "cpi_stack": {
                    field: getattr(inst.cpi_stack, field)
                    for field in _STACK_FIELDS
                },
            }
            for inst in solution.instances
        ],
    }


def generate_golden() -> dict:
    """Freeze the scalar reference solver's outputs for the population."""
    population = golden_population()
    cases = []
    for machine_name, machine in sorted(_MACHINES.items()):
        for mix in population:
            solution = solve_colocation(machine, _build(mix))
            cases.append(
                {
                    "machine": machine_name,
                    "scenario": [[name, load] for name, load in mix],
                    **_solution_record(solution),
                }
            )
    return {"population_seed": 20268, "cases": cases}


@pytest.fixture(scope="module")
def golden(request):
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(generate_golden(), indent=1) + "\n"
        )
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing — run with --update-golden to create it"
        )
    return json.loads(GOLDEN_PATH.read_text())


def _assert_matches_case(case, solution):
    context = f"machine={case['machine']} scenario={case['scenario']}"
    assert solution.converged == case["converged"], context
    assert solution.iterations == case["iterations"], context
    assert solution.cpu_utilization == case["cpu_utilization"], context
    assert solution.mem_bw_utilization == case["mem_bw_utilization"], context
    assert solution.mem_latency_ns == case["mem_latency_ns"], context
    assert len(solution.instances) == len(case["instances"])
    for inst, frozen in zip(solution.instances, case["instances"]):
        assert inst.job_name == frozen["job"], context
        for field in _INSTANCE_FIELDS:
            assert getattr(inst, field) == frozen[field], (
                f"{context} {frozen['job']}.{field}"
            )
        for field in _STACK_FIELDS:
            assert getattr(inst.cpi_stack, field) == frozen["cpi_stack"][
                field
            ], f"{context} {frozen['job']}.cpi_stack.{field}"


def test_golden_file_is_current(golden):
    # The committed fixture must describe exactly today's population and
    # machine set; a mismatch means the generator changed without
    # --update-golden.
    assert golden["population_seed"] == 20268
    expected = [
        (machine_name, [[name, load] for name, load in mix])
        for machine_name in sorted(_MACHINES)
        for mix in golden_population()
    ]
    actual = [(case["machine"], case["scenario"]) for case in golden["cases"]]
    assert actual == expected


def test_scalar_solver_reproduces_golden(golden):
    for case in golden["cases"]:
        machine = _MACHINES[case["machine"]]
        mix = [(name, load) for name, load in case["scenario"]]
        _assert_matches_case(case, solve_colocation(machine, _build(mix)))


def test_batched_solver_reproduces_golden(golden):
    # Group per machine so the whole population solves as one batch —
    # padding, row order and convergence masking must not perturb bits.
    by_machine: dict[str, list[dict]] = {}
    for case in golden["cases"]:
        by_machine.setdefault(case["machine"], []).append(case)
    for machine_name, cases in by_machine.items():
        machine = _MACHINES[machine_name]
        population = [
            _build([(name, load) for name, load in case["scenario"]])
            for case in cases
        ]
        solutions = solve_colocation_batch(machine, population)
        for case, solution in zip(cases, solutions):
            _assert_matches_case(case, solution)
