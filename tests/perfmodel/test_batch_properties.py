"""Physical-invariant property tests for the batched solver.

The scalar solver's invariants are covered in
``test_contention_properties.py``; this module asserts the same physics
on :func:`repro.perfmodel.solve_colocation_batch` outputs — ragged
batches included — plus the model-level monotonicity and capping
contracts the batch layout must not disturb:

* LLC shares of a scenario never sum past the machine's capacity;
* the hyperbolic miss-ratio curve is monotone non-increasing in the
  allotted share;
* the bandwidth utilisation feeding the congestion latency is capped
  below 1, so memory latency is always finite and bounded;
* the SMT CPI penalty is exactly zero while the machine is not
  core-oversubscribed, and disabling SMT never shrinks the penalty.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import MachinePerf, RunningInstance, solve_colocation_batch
from repro.perfmodel.contention import _BW_CONGESTION_GAIN, _BW_UTIL_CAP
from repro.perfmodel.mrc import hyperbolic_miss_ratio
from repro.workloads import HP_JOBS, LP_JOBS

_CATALOGUE = {**HP_JOBS, **LP_JOBS}
_ALL_JOBS = sorted(_CATALOGUE)

job_mixes = st.lists(
    st.tuples(
        st.sampled_from(_ALL_JOBS),
        st.floats(min_value=0.3, max_value=1.0),
    ),
    min_size=1,
    max_size=16,
)

populations = st.lists(job_mixes, min_size=1, max_size=6)

machines = st.builds(
    MachinePerf,
    llc_mb=st.floats(min_value=8.0, max_value=120.0),
    max_freq_ghz=st.floats(min_value=1.3, max_value=3.8),
    smt_enabled=st.booleans(),
    mem_bw_gbps=st.floats(min_value=15.0, max_value=200.0),
)


def build(pop):
    return [
        [
            RunningInstance(signature=_CATALOGUE[name], load=load)
            for name, load in mix
        ]
        for mix in pop
    ]


@settings(max_examples=50, deadline=None)
@given(machines, populations)
def test_llc_shares_never_exceed_capacity(machine, pop):
    for solution in solve_colocation_batch(machine, build(pop)):
        total_share = sum(inst.cache_share_mb for inst in solution.instances)
        assert total_share <= machine.llc_mb * (1.0 + 1e-6)
        for inst in solution.instances:
            assert inst.cache_share_mb >= 0.0


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(_ALL_JOBS),
    st.lists(
        st.floats(min_value=0.0, max_value=240.0), min_size=2, max_size=12
    ),
)
def test_miss_ratio_monotone_non_increasing_in_share(name, shares):
    mrc = _CATALOGUE[name].mrc
    ordered = np.sort(np.asarray(shares))
    ratios = hyperbolic_miss_ratio(
        ordered,
        np.full_like(ordered, mrc.half_capacity_mb),
        np.full_like(ordered, mrc.shape),
        np.full_like(ordered, mrc.floor),
    )
    assert (np.diff(ratios) <= 1e-12).all()
    assert (ratios >= mrc.floor - 1e-12).all()
    assert (ratios <= 1.0 + 1e-12).all()


@settings(max_examples=50, deadline=None)
@given(machines, populations)
def test_bandwidth_is_capped_below_machine_ceiling(machine, pop):
    # The utilisation feeding the congestion term is clamped to
    # _BW_UTIL_CAP < 1, so the latency multiplier never blows up: the
    # solver models a saturated memory system, not an impossible one.
    latency_ceiling = machine.mem_latency_ns * (
        1.0
        + _BW_CONGESTION_GAIN * _BW_UTIL_CAP * _BW_UTIL_CAP / (1.0 - _BW_UTIL_CAP)
    )
    for solution in solve_colocation_batch(machine, build(pop)):
        assert solution.mem_bw_utilization >= 0.0
        assert np.isfinite(solution.mem_latency_ns)
        assert solution.mem_latency_ns <= latency_ceiling * (1.0 + 1e-12)
        # The *effective* utilisation — what the congestion latency
        # actually sees — never exceeds the cap, so modelled consumed
        # bandwidth stays below the machine ceiling.  (The reported raw
        # utilisation may exceed 1 in saturated scenarios by design:
        # it is the demand, not the delivered bandwidth.)
        effective = min(solution.mem_bw_utilization, _BW_UTIL_CAP)
        assert effective * machine.mem_bw_gbps < machine.mem_bw_gbps


@settings(max_examples=50, deadline=None)
@given(populations, st.booleans())
def test_smt_penalty_zero_without_core_oversubscription(pop, smt_enabled):
    # The SMT stack component models core *sharing*; while total busy
    # threads fit on physical cores there is nothing to share, SMT flag
    # or not.  (With SMT off and an oversubscribed machine the penalty
    # is legitimately non-zero — threads strictly time-slice.)
    machine = MachinePerf(smt_enabled=smt_enabled)
    population = build(pop)
    for scenario, solution in zip(
        population, solve_colocation_batch(machine, population)
    ):
        total_busy = sum(inst.busy_threads for inst in scenario)
        if total_busy <= machine.physical_cores:
            for inst in solution.instances:
                assert inst.cpi_stack.smt == 0.0


@settings(max_examples=40, deadline=None)
@given(populations)
def test_disabling_smt_never_shrinks_the_penalty(pop):
    population = build(pop)
    on = solve_colocation_batch(MachinePerf(smt_enabled=True), population)
    off = solve_colocation_batch(MachinePerf(smt_enabled=False), population)
    for sol_on, sol_off in zip(on, off):
        for inst_on, inst_off in zip(sol_on.instances, sol_off.instances):
            assert inst_off.cpi_stack.smt >= inst_on.cpi_stack.smt - 1e-12


@settings(max_examples=40, deadline=None)
@given(machines, populations)
def test_batched_solutions_are_physical(machine, pop):
    population = build(pop)
    for scenario, solution in zip(
        population, solve_colocation_batch(machine, population)
    ):
        assert len(solution.instances) == len(scenario)
        for inst in solution.instances:
            assert inst.mips > 0.0
            assert 0.0 < inst.ipc < 8.0
            assert 0.0 <= inst.llc_miss_ratio <= 1.0
            assert inst.llc_mpki >= 0.0
            assert inst.dram_gbps >= 0.0
        assert 0.0 <= solution.cpu_utilization <= 1.0
        assert solution.mem_latency_ns >= machine.mem_latency_ns
