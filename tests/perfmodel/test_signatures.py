"""Unit tests for job signatures."""

import dataclasses

import pytest

from repro.perfmodel import JobSignature, MissRatioCurve, Priority


@pytest.fixture()
def base_kwargs():
    return dict(
        name="toy",
        description="toy job",
        priority=Priority.HIGH,
        vcpus=4,
        dram_gb=8.0,
        base_cpi=0.5,
        frontend_cpi=0.2,
        branch_mpki=5.0,
        l1i_apki=300.0,
        l1d_apki=350.0,
        l2_apki=40.0,
        llc_apki=10.0,
        mrc=MissRatioCurve(half_capacity_mb=8.0),
        mem_blocking_factor=0.5,
    )


class TestJobSignature:
    def test_valid_construction(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        assert sig.is_high_priority
        assert sig.vcpus == 4

    def test_lp_not_high_priority(self, base_kwargs):
        base_kwargs["priority"] = Priority.LOW
        assert not JobSignature(**base_kwargs).is_high_priority

    def test_frozen(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        with pytest.raises(dataclasses.FrozenInstanceError):
            sig.vcpus = 8

    def test_hashable(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        assert hash(sig) == hash(JobSignature(**base_kwargs))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("vcpus", 0),
            ("dram_gb", 0.0),
            ("base_cpi", 0.0),
            ("frontend_cpi", -0.1),
            ("branch_mpki", -1.0),
            ("llc_apki", -1.0),
            ("mem_blocking_factor", 0.0),
            ("mem_blocking_factor", 1.5),
            ("write_fraction", 1.1),
            ("active_fraction", 0.0),
            ("active_fraction", 1.2),
            ("spin_fraction", 1.0),
            ("network_bytes_per_instr", -0.1),
        ],
    )
    def test_invalid_field_raises(self, base_kwargs, field, value):
        base_kwargs[field] = value
        with pytest.raises(ValueError):
            JobSignature(**base_kwargs)


class TestScaledLoad:
    def test_scales_active_fraction(self, base_kwargs):
        base_kwargs["active_fraction"] = 0.8
        sig = JobSignature(**base_kwargs)
        scaled = sig.scaled_load(0.5)
        assert scaled.active_fraction == pytest.approx(0.4)

    def test_preserves_cache_behaviour(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        scaled = sig.scaled_load(0.5)
        assert scaled.llc_apki == sig.llc_apki
        assert scaled.mrc == sig.mrc

    def test_full_load_is_identity(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        assert sig.scaled_load(1.0) == sig

    def test_invalid_load_raises(self, base_kwargs):
        sig = JobSignature(**base_kwargs)
        with pytest.raises(ValueError):
            sig.scaled_load(0.0)
        with pytest.raises(ValueError):
            sig.scaled_load(1.5)
