"""Cross-layer equivalence battery for the persistent solve memo.

The memo is only sound if a hit is indistinguishable from a fresh
solve.  These tests pin that down from every direction:

* **differential equivalence** (hypothesis): memo-on and memo-off runs
  of ``solve_colocation_many`` agree on every published float *exactly*
  (``==``, not approx), for random machines and scenario populations,
  through both the scalar and batched solver paths;
* **cold == warm == cross-run**: a store-backed memo returns the same
  bits whether the entry was just solved, is served from the in-process
  LRU, or is read back by a fresh process-equivalent instance from the
  segment files;
* **adversarial keys**: distinct machine configurations (including
  ``-0.0`` vs ``0.0``) and distinct scenarios can never alias onto one
  key, and a hypothetical digest collision degrades to a miss via the
  instance-count check rather than returning a wrong solve;
* **corruption/truncation**: damaged segment files fail their digest
  check and are dropped whole — every damaged-store outcome is a miss
  followed by a correct fresh solve, never a wrong answer.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import MachinePerf, RunningInstance
from repro.perfmodel.batch import solve_colocation_many
from repro.perfmodel.contention import solve_colocation
from repro.perfmodel.memo import (
    MEMO_FORMAT_VERSION,
    SolveMemo,
    _MEMO_REGISTRY,
    decode_memo_entries,
    encode_memo_entries,
    resolve_memo,
    solve_key,
    validate_memo_spec,
)
from repro.workloads import HP_JOBS, LP_JOBS

_CATALOGUE = {**HP_JOBS, **LP_JOBS}
_ALL_JOBS = sorted(_CATALOGUE)

job_mixes = st.lists(
    st.tuples(
        st.sampled_from(_ALL_JOBS),
        st.floats(min_value=0.3, max_value=1.0),
    ),
    min_size=1,
    max_size=10,
)

populations = st.lists(job_mixes, min_size=1, max_size=6)

machines = st.builds(
    MachinePerf,
    llc_mb=st.floats(min_value=8.0, max_value=120.0),
    max_freq_ghz=st.floats(min_value=1.3, max_value=3.8),
    smt_enabled=st.booleans(),
    mem_bw_gbps=st.floats(min_value=15.0, max_value=200.0),
)

_STACK_FIELDS = ("base", "frontend", "branch", "l2", "llc_hit", "dram", "smt")
_PERF_FIELDS = (
    "mips",
    "ipc",
    "busy_threads",
    "cache_share_mb",
    "llc_miss_ratio",
    "llc_mpki",
    "dram_gbps",
    "network_gbps",
    "disk_mbps",
    "frequency_ghz",
)


def build(pop):
    return [
        [
            RunningInstance(signature=_CATALOGUE[name], load=load)
            for name, load in mix
        ]
        for mix in pop
    ]


def assert_bit_identical(expected, actual, context=""):
    """Exact (``==``) equality on every published solve float."""
    assert actual.converged == expected.converged, context
    assert actual.iterations == expected.iterations, context
    assert actual.cpu_utilization == expected.cpu_utilization, context
    assert actual.mem_bw_utilization == expected.mem_bw_utilization, context
    assert actual.mem_latency_ns == expected.mem_latency_ns, context
    assert len(actual.instances) == len(expected.instances), context
    for got, want in zip(actual.instances, expected.instances):
        assert got.job_name == want.job_name, context
        assert got.priority == want.priority, context
        for field in _PERF_FIELDS:
            assert getattr(got, field) == getattr(want, field), (
                f"{context} {want.job_name}.{field}"
            )
        for field in _STACK_FIELDS:
            assert getattr(got.cpi_stack, field) == getattr(
                want.cpi_stack, field
            ), f"{context} {want.job_name}.cpi_stack.{field}"


@pytest.fixture(autouse=True)
def _clean_registry():
    _MEMO_REGISTRY.clear()
    yield
    _MEMO_REGISTRY.clear()


# ----------------------------------------------------------------------
# Differential equivalence: memo on == memo off, exactly
@settings(max_examples=40, deadline=None)
@given(machines, populations, st.sampled_from(["scalar", "batched"]))
def test_memo_on_equals_memo_off_exactly(machine, pop, solver):
    population = build(pop)
    plain = solve_colocation_many(machine, population, solver=solver)
    memo = SolveMemo("memory")
    cold = solve_colocation_many(
        machine, population, solver=solver, memo=memo
    )
    warm = solve_colocation_many(
        machine, population, solver=solver, memo=memo
    )
    for index, reference in enumerate(plain):
        assert_bit_identical(reference, cold[index], f"cold[{index}]")
        assert_bit_identical(reference, warm[index], f"warm[{index}]")


@settings(max_examples=25, deadline=None)
@given(machines, populations)
def test_memoised_scalar_equals_memoised_batched(machine, pop):
    population = build(pop)
    scalar = solve_colocation_many(
        machine, population, solver="scalar", memo=SolveMemo("memory")
    )
    batched = solve_colocation_many(
        machine, population, solver="batched", memo=SolveMemo("memory")
    )
    for index, reference in enumerate(scalar):
        assert_bit_identical(reference, batched[index], f"[{index}]")


def _population():
    return build(
        [
            [("WSC", 1.0), ("GA", 1.0)],
            [("DC", 0.85), ("mcf", 1.0)],
            [("DA", 1.0), ("DA", 0.7), ("WSV", 0.85)],
            [("IA", 1.0), ("MS", 0.7), ("omnetpp", 1.0)],
            [("WSC", 1.0), ("GA", 1.0)],  # duplicate of scenario 0
        ]
    )


def test_cold_warm_and_cross_run_are_bit_identical(tmp_path):
    machine = MachinePerf()
    population = _population()
    plain = solve_colocation_many(machine, population)
    spec = f"store:{tmp_path / 'memo'}"

    cold_memo = SolveMemo(spec)
    cold = solve_colocation_many(machine, population, memo=cold_memo)
    assert cold_memo.stats()["segments_written"] == 1
    # unique scenarios only — the duplicate dedups to one entry
    assert cold_memo.store_entries == 4

    warm = solve_colocation_many(machine, population, memo=cold_memo)
    assert cold_memo.stats()["memory_hits"] >= len(population)

    # A fresh instance over the same directory models the cross-run /
    # cross-process reader: everything must come from the segments.
    fresh = SolveMemo(spec)
    cross = solve_colocation_many(machine, population, memo=fresh)
    assert fresh.store_hits == 4
    assert fresh.segments_written == 0

    for index, reference in enumerate(plain):
        assert_bit_identical(reference, cold[index], f"cold[{index}]")
        assert_bit_identical(reference, warm[index], f"warm[{index}]")
        assert_bit_identical(reference, cross[index], f"cross[{index}]")


def test_in_batch_duplicates_share_one_solve(tmp_path):
    memo = SolveMemo(f"store:{tmp_path / 'memo'}")
    population = _population()
    solutions = solve_colocation_many(
        MachinePerf(), population, memo=memo
    )
    assert solutions[0] is solutions[4]


# ----------------------------------------------------------------------
# Adversarial keys
def test_solve_key_distinguishes_every_machine_field():
    # Reuses the override discipline of test_solve_cache: a new
    # MachinePerf field without coverage here fails the count check.
    from tests.perfmodel.test_solve_cache import _FIELD_OVERRIDES

    assert set(_FIELD_OVERRIDES) == {
        field.name for field in dataclasses.fields(MachinePerf)
    }
    instances = _population()[0]
    base_key = solve_key(MachinePerf(), instances)
    for field, value in _FIELD_OVERRIDES.items():
        variant = dataclasses.replace(MachinePerf(), **{field: value})
        assert solve_key(variant, instances) != base_key, field


def _machine_with(**overrides):
    # MachinePerf validates positivity at construction; keys must stay
    # sound even for values that slip past validation (defence in
    # depth), so these tests plant the payload directly.
    machine = MachinePerf()
    for name, value in overrides.items():
        object.__setattr__(machine, name, value)
    return machine


def test_solve_key_distinguishes_negative_zero_machines():
    instances = _population()[0]
    base = _machine_with(mem_bw_gbps=0.0)
    negative = _machine_with(mem_bw_gbps=-0.0)
    assert solve_key(base, instances) != solve_key(negative, instances)


def test_solve_key_with_nan_field_matches_itself():
    # NaN != NaN must not leak into the key: the same configuration
    # hashed twice (or in two processes) has to produce the same key.
    instances = _population()[0]
    broken = _machine_with(mem_bw_gbps=float("nan"))
    assert solve_key(broken, instances) == solve_key(broken, instances)


def test_solve_key_distinguishes_loads_order_and_signatures():
    machine = MachinePerf()
    a = _population()[0]
    assert solve_key(machine, a) != solve_key(
        machine, [dataclasses.replace(a[0], load=0.5), a[1]]
    )
    assert solve_key(machine, a) != solve_key(machine, [a[1], a[0]])
    assert solve_key(machine, a) != solve_key(machine, a[:1])


def test_stale_entries_never_served_across_machines(tmp_path):
    # The original _SolveCache hazard, replayed at the persistent tier:
    # solve the baseline into the store, then query a feature variant —
    # the variant must miss and solve its own physics.
    population = _population()
    spec = f"store:{tmp_path / 'memo'}"
    baseline = MachinePerf()
    solve_colocation_many(baseline, population, memo=SolveMemo(spec))

    variant = dataclasses.replace(baseline, mem_bw_gbps=64.0)
    memo = SolveMemo(spec)
    served = solve_colocation_many(variant, population, memo=memo)
    assert memo.store_hits == 0
    for index, reference in enumerate(
        solve_colocation_many(variant, population)
    ):
        assert_bit_identical(reference, served[index], f"[{index}]")


def test_collision_with_wrong_instance_count_degrades_to_miss(tmp_path):
    # Force the astronomically-unlikely case: two scenarios mapped onto
    # one key.  The stored instance count disagrees with the query, so
    # decode refuses and the caller re-solves — miss, not a wrong solve.
    machine = MachinePerf()
    two = _population()[0]
    three = _population()[2]
    solution = solve_colocation(machine, two)
    key = solve_key(machine, two)
    entries, rows = encode_memo_entries([(key, solution)])
    assert (
        decode_memo_entries(machine, three, entries[0], rows) is None
    )

    memo = SolveMemo(f"store:{tmp_path / 'memo'}")
    memo.record(key, solution)
    memo.flush()
    fresh = SolveMemo(f"store:{tmp_path / 'memo'}")
    assert fresh.lookup(key, machine, three) is None
    hit = fresh.lookup(key, machine, two)
    assert hit is not None
    assert_bit_identical(solution, hit)


# ----------------------------------------------------------------------
# Corruption and truncation: a damaged store is a miss, never a lie
def _written_memo(tmp_path):
    machine = MachinePerf()
    population = _population()
    spec = f"store:{tmp_path / 'memo'}"
    reference = solve_colocation_many(
        machine, population, memo=SolveMemo(spec)
    )
    return machine, population, spec, reference


def _segment_files(tmp_path, suffix):
    return sorted((tmp_path / "memo").glob(f"seg-*{suffix}"))


@pytest.mark.parametrize("suffix", [".entries.npy", ".instances.npy"])
def test_corrupt_segment_is_skipped_whole(tmp_path, suffix):
    machine, population, spec, reference = _written_memo(tmp_path)
    [target] = _segment_files(tmp_path, suffix)
    blob = bytearray(target.read_bytes())
    blob[-3] ^= 0xFF
    target.write_bytes(bytes(blob))

    memo = SolveMemo(spec)
    served = solve_colocation_many(machine, population, memo=memo)
    assert memo.corrupt_segments == 1
    assert memo.store_hits == 0
    for index, want in enumerate(reference):
        assert_bit_identical(want, served[index], f"[{index}]")


@pytest.mark.parametrize("suffix", [".entries.npy", ".instances.npy"])
def test_truncated_segment_is_skipped_whole(tmp_path, suffix):
    machine, population, spec, reference = _written_memo(tmp_path)
    [target] = _segment_files(tmp_path, suffix)
    target.write_bytes(target.read_bytes()[: target.stat().st_size // 2])

    memo = SolveMemo(spec)
    served = solve_colocation_many(machine, population, memo=memo)
    assert memo.corrupt_segments == 1
    for index, want in enumerate(reference):
        assert_bit_identical(want, served[index], f"[{index}]")


def test_missing_array_next_to_sidecar_is_skipped(tmp_path):
    machine, population, spec, reference = _written_memo(tmp_path)
    [target] = _segment_files(tmp_path, ".instances.npy")
    target.unlink()
    memo = SolveMemo(spec)
    served = solve_colocation_many(machine, population, memo=memo)
    assert memo.corrupt_segments == 1
    for index, want in enumerate(reference):
        assert_bit_identical(want, served[index], f"[{index}]")


def test_garbage_sidecar_is_skipped(tmp_path):
    machine, population, spec, _ = _written_memo(tmp_path)
    [sidecar] = _segment_files(tmp_path, ".json")
    sidecar.write_text("{not json")
    memo = SolveMemo(spec)
    assert memo.refresh() == 0
    assert memo.corrupt_segments == 1
    assert memo.store_entries == 0


def test_future_format_version_is_skipped(tmp_path):
    machine, population, spec, _ = _written_memo(tmp_path)
    [sidecar] = _segment_files(tmp_path, ".json")
    payload = json.loads(sidecar.read_text())
    payload["format_version"] = MEMO_FORMAT_VERSION + 1
    sidecar.write_text(json.dumps(payload))
    memo = SolveMemo(spec)
    assert memo.refresh() == 0
    assert memo.corrupt_segments == 1


def test_missing_directory_is_just_empty(tmp_path):
    memo = SolveMemo(f"store:{tmp_path / 'never-created'}")
    machine = MachinePerf()
    population = _population()
    served = solve_colocation_many(machine, population, memo=memo)
    for index, want in enumerate(solve_colocation_many(machine, population)):
        assert_bit_identical(want, served[index], f"[{index}]")


# ----------------------------------------------------------------------
# Knob plumbing, registry and pickling
def test_validate_memo_spec():
    assert validate_memo_spec("off") == ("off", None)
    assert validate_memo_spec("memory") == ("memory", None)
    assert validate_memo_spec("store:/x/y") == ("store", "/x/y")
    with pytest.raises(ValueError):
        validate_memo_spec("store:")
    with pytest.raises(ValueError):
        validate_memo_spec("disk:/x")
    with pytest.raises(TypeError):
        validate_memo_spec(7)


def test_resolve_memo_registry_and_off():
    assert resolve_memo(None) is None
    assert resolve_memo("off") is None
    first = resolve_memo("memory")
    assert resolve_memo("memory") is first
    direct = SolveMemo("memory")
    assert resolve_memo(direct) is direct


def test_pickled_memo_rebinds_to_registry(tmp_path):
    spec = f"store:{tmp_path / 'memo'}"
    memo = resolve_memo(spec)
    clone = pickle.loads(pickle.dumps(memo))
    assert clone is memo  # same process -> same registry instance


def test_memo_cannot_be_constructed_off():
    with pytest.raises(ValueError):
        SolveMemo("off")


def test_memory_mode_never_touches_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    memo = SolveMemo("memory")
    machine = MachinePerf()
    population = _population()
    solve_colocation_many(machine, population, memo=memo)
    memo.flush()
    assert memo.path is None
    assert list(tmp_path.iterdir()) == []
