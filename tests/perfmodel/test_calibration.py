"""Unit tests for model calibration from measurements."""

import numpy as np
import pytest

from repro.perfmodel import CPIStack, MissRatioCurve
from repro.perfmodel.calibration import (
    calibrate_cpi_components,
    fit_mrc,
)


class TestFitMrc:
    def test_recovers_known_curve(self):
        truth = MissRatioCurve(half_capacity_mb=12.0, shape=1.3, floor=0.08)
        sizes = np.array([0.5, 1, 2, 4, 8, 12, 16, 24, 32, 48, 60])
        ratios = np.array([truth.miss_ratio(c) for c in sizes])
        fit = fit_mrc(sizes, ratios)
        assert fit.rmse < 1e-6
        assert fit.mrc.half_capacity_mb == pytest.approx(12.0, rel=0.05)
        assert fit.mrc.shape == pytest.approx(1.3, rel=0.05)
        assert fit.mrc.floor == pytest.approx(0.08, abs=0.01)

    def test_tolerates_measurement_noise(self, rng):
        truth = MissRatioCurve(half_capacity_mb=6.0, shape=1.0, floor=0.2)
        sizes = np.linspace(0.5, 40, 20)
        ratios = np.clip(
            [truth.miss_ratio(c) for c in sizes]
            + rng.normal(0, 0.01, size=20),
            0.0,
            1.0,
        )
        fit = fit_mrc(sizes, ratios)
        assert fit.rmse < 0.03
        assert fit.mrc.half_capacity_mb == pytest.approx(6.0, rel=0.5)

    def test_fitted_curve_usable_in_signature(self):
        truth = MissRatioCurve(half_capacity_mb=10.0, shape=0.9, floor=0.3)
        sizes = np.array([1, 4, 8, 16, 32, 60], dtype=float)
        fit = fit_mrc(sizes, [truth.miss_ratio(c) for c in sizes])
        # Returned object is a real MissRatioCurve with valid invariants.
        assert 0.0 <= fit.mrc.floor < 1.0
        assert fit.mrc.miss_ratio(0.0) == pytest.approx(1.0)

    def test_streaming_job_high_floor(self):
        sizes = np.array([1, 5, 10, 30, 60], dtype=float)
        ratios = np.array([0.93, 0.90, 0.89, 0.885, 0.88])
        fit = fit_mrc(sizes, ratios)
        assert fit.mrc.floor > 0.6

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            fit_mrc([1.0, 2.0], [0.5, 0.4])
        with pytest.raises(ValueError, match="matching"):
            fit_mrc([1.0, 2.0, 3.0], [0.5, 0.4])
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            fit_mrc([1.0, 2.0, 3.0], [0.5, 0.4, 1.4])
        with pytest.raises(ValueError, match="non-negative"):
            fit_mrc([-1.0, 2.0, 3.0], [0.5, 0.4, 0.3])

    def test_n_points_recorded(self):
        truth = MissRatioCurve(half_capacity_mb=5.0)
        sizes = np.array([1, 2, 4, 8], dtype=float)
        fit = fit_mrc(sizes, [truth.miss_ratio(c) for c in sizes])
        assert fit.n_points == 4


class TestCalibrateCpi:
    def test_round_trip_through_topdown(self):
        """Components derived from a stack's own topdown must sum back to
        the stack's CPI and match its grouping."""
        stack = CPIStack(
            base=0.5, frontend=0.3, branch=0.1, l2=0.05, llc_hit=0.1,
            dram=0.6, smt=0.15,
        )
        ipc = 1.0 / stack.total
        components = calibrate_cpi_components(ipc, stack.topdown())
        assert components.total == pytest.approx(stack.total)
        assert components.base_cpi == pytest.approx(stack.base)
        assert components.frontend_cpi == pytest.approx(stack.frontend)
        assert components.bad_speculation_cpi == pytest.approx(stack.branch)
        assert components.backend_cpi == pytest.approx(
            stack.memory + stack.smt
        )

    def test_invalid_ipc(self):
        stack = CPIStack(base=1.0, frontend=0, branch=0, l2=0, llc_hit=0, dram=0)
        with pytest.raises(ValueError):
            calibrate_cpi_components(0.0, stack.topdown())
