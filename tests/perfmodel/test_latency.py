"""Unit tests for the request-latency model."""

import pytest

from repro.perfmodel import (
    DEFAULT_SERVICE_TIME_MS,
    MachinePerf,
    RunningInstance,
    inherent_performance,
    instance_latency,
    solve_colocation,
)
from repro.workloads import HP_JOBS, LP_JOBS


@pytest.fixture()
def machine():
    return MachinePerf()


def alone(machine, job="WSC", load=1.0):
    sig = {**HP_JOBS, **LP_JOBS}[job]
    sol = solve_colocation(machine, [RunningInstance(sig, load=load)])
    return sol.instances[0]


class TestInstanceLatency:
    def test_uncontended_latency_is_queueing_only(self, machine):
        perf = alone(machine, "WSC", load=0.5)
        est = instance_latency(perf, perf, 0.5)
        # No interference: inflation 1, mean = S/(1-0.5) = 2S.
        assert est.mean_ms == pytest.approx(
            DEFAULT_SERVICE_TIME_MS["WSC"] * 2.0
        )
        assert est.utilisation == pytest.approx(0.5)

    def test_p99_exceeds_mean(self, machine):
        perf = alone(machine, "DC", load=0.6)
        est = instance_latency(perf, perf, 0.6)
        assert est.p99_ms > est.mean_ms
        assert est.p99_ms == pytest.approx(est.mean_ms * 4.605, rel=1e-3)

    def test_interference_inflates_latency(self, machine):
        sig = HP_JOBS["WSC"]
        inherent = inherent_performance(machine, sig)
        crowded = solve_colocation(
            machine,
            [RunningInstance(sig)]
            + [RunningInstance(LP_JOBS["mcf"]) for _ in range(8)],
        )
        contended = instance_latency(crowded.instances[0], inherent, 1.0)
        baseline = instance_latency(inherent, inherent, 1.0)
        assert contended.mean_ms > baseline.mean_ms
        assert contended.utilisation >= baseline.utilisation

    def test_latency_amplifies_throughput_loss(self, machine):
        """Queueing makes tail latency degrade faster than MIPS."""
        sig = HP_JOBS["WSC"]
        inherent = inherent_performance(machine, sig)
        crowded = solve_colocation(
            machine,
            [RunningInstance(sig, load=0.8)]
            + [RunningInstance(LP_JOBS["mcf"]) for _ in range(8)],
        )
        perf = crowded.instances[0]
        mips_loss = 1.0 - perf.mips / (inherent.mips * 0.8)
        lat = instance_latency(perf, inherent, 0.8)
        base = instance_latency(inherent, inherent, 0.8)
        latency_loss = 1.0 - base.p99_ms / lat.p99_ms
        assert latency_loss > mips_loss * 0.9

    def test_higher_load_higher_latency(self, machine):
        low = alone(machine, "DS", load=0.5)
        high = alone(machine, "DS", load=0.85)
        est_low = instance_latency(low, low, 0.5)
        est_high = instance_latency(high, high, 0.85)
        assert est_high.mean_ms > est_low.mean_ms

    def test_utilisation_capped(self, machine):
        sig = HP_JOBS["GA"]
        inherent = inherent_performance(machine, sig)
        crowded = solve_colocation(
            machine,
            [RunningInstance(sig)]
            + [RunningInstance(LP_JOBS["libquantum"]) for _ in range(11)],
        )
        est = instance_latency(crowded.instances[0], inherent, 1.0)
        assert est.utilisation <= 0.99
        assert est.mean_ms < float("inf")

    def test_custom_service_time(self, machine):
        perf = alone(machine, "WSC", load=0.5)
        est = instance_latency(perf, perf, 0.5, service_time_ms=10.0)
        assert est.service_time_ms == 10.0
        assert est.mean_ms == pytest.approx(20.0)

    def test_unlisted_job_uses_fallback(self, machine):
        perf = alone(machine, "mcf", load=0.5)
        est = instance_latency(perf, perf, 0.5)
        assert est.service_time_ms == 2.0

    def test_validation(self, machine):
        perf = alone(machine, "WSC")
        other = alone(machine, "GA")
        with pytest.raises(ValueError, match="load"):
            instance_latency(perf, perf, 0.0)
        with pytest.raises(ValueError, match="inherent"):
            instance_latency(perf, other, 0.5)
        with pytest.raises(ValueError, match="service_time"):
            instance_latency(perf, perf, 0.5, service_time_ms=0.0)

    def test_queueing_factor(self, machine):
        perf = alone(machine, "WSC", load=0.5)
        est = instance_latency(perf, perf, 0.5)
        assert est.queueing_factor == pytest.approx(2.0)
