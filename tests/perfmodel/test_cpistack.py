"""Unit tests for CPI stacks and topdown mapping."""

import pytest

from repro.perfmodel import CPIStack, TopdownBreakdown


@pytest.fixture()
def stack():
    return CPIStack(
        base=0.5, frontend=0.2, branch=0.1, l2=0.05, llc_hit=0.1, dram=0.8, smt=0.25
    )


class TestCPIStack:
    def test_total_is_sum(self, stack):
        assert stack.total == pytest.approx(2.0)

    def test_memory_component(self, stack):
        assert stack.memory == pytest.approx(0.95)

    def test_negative_component_raises(self):
        with pytest.raises(ValueError):
            CPIStack(base=0.5, frontend=-0.1, branch=0, l2=0, llc_hit=0, dram=0)

    def test_zero_base_raises(self):
        with pytest.raises(ValueError):
            CPIStack(base=0.0, frontend=0.1, branch=0, l2=0, llc_hit=0, dram=0)

    def test_smt_defaults_to_zero(self):
        s = CPIStack(base=1.0, frontend=0, branch=0, l2=0, llc_hit=0, dram=0)
        assert s.smt == 0.0
        assert s.total == 1.0


class TestTopdown:
    def test_level1_sums_to_one(self, stack):
        td = stack.topdown()
        total = (
            td.retiring + td.frontend_bound + td.bad_speculation + td.backend_bound
        )
        assert total == pytest.approx(1.0)

    def test_backend_split_consistent(self, stack):
        td = stack.topdown()
        assert td.memory_bound + td.core_bound == pytest.approx(td.backend_bound)

    def test_fractions_match_components(self, stack):
        td = stack.topdown()
        assert td.retiring == pytest.approx(0.5 / 2.0)
        assert td.frontend_bound == pytest.approx(0.2 / 2.0)
        assert td.bad_speculation == pytest.approx(0.1 / 2.0)
        assert td.memory_bound == pytest.approx(0.95 / 2.0)
        assert td.core_bound == pytest.approx(0.25 / 2.0)

    def test_memory_bound_job_dominated_by_memory(self):
        s = CPIStack(base=0.3, frontend=0.05, branch=0.02, l2=0.1, llc_hit=0.2, dram=3.0)
        td = s.topdown()
        assert td.memory_bound > 0.8

    def test_breakdown_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TopdownBreakdown(
                retiring=0.5,
                frontend_bound=0.1,
                bad_speculation=0.1,
                backend_bound=0.1,
                memory_bound=0.05,
                core_bound=0.05,
            )
        with pytest.raises(ValueError, match="must equal backend"):
            TopdownBreakdown(
                retiring=0.5,
                frontend_bound=0.2,
                bad_speculation=0.1,
                backend_bound=0.2,
                memory_bound=0.05,
                core_bound=0.05,
            )
