"""Property-based tests for contention-solver invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import MachinePerf, RunningInstance, solve_colocation
from repro.workloads import HP_JOBS, LP_JOBS

_ALL_JOBS = sorted({**HP_JOBS, **LP_JOBS})

job_mixes = st.lists(
    st.tuples(
        st.sampled_from(_ALL_JOBS),
        st.floats(min_value=0.3, max_value=1.0),
    ),
    min_size=1,
    max_size=12,
)

machines = st.builds(
    MachinePerf,
    llc_mb=st.floats(min_value=8.0, max_value=120.0),
    max_freq_ghz=st.floats(min_value=1.3, max_value=3.8),
    smt_enabled=st.booleans(),
    mem_bw_gbps=st.floats(min_value=30.0, max_value=200.0),
)


def build(mix):
    catalogue = {**HP_JOBS, **LP_JOBS}
    return [
        RunningInstance(signature=catalogue[name], load=load)
        for name, load in mix
    ]


@settings(max_examples=60, deadline=None)
@given(machines, job_mixes)
def test_solution_is_physical(machine, mix):
    sol = solve_colocation(machine, build(mix))
    total_share = 0.0
    for inst in sol.instances:
        assert inst.mips > 0.0
        assert 0.0 < inst.ipc < 8.0
        assert 0.0 <= inst.llc_miss_ratio <= 1.0
        assert inst.llc_mpki >= 0.0
        assert inst.cache_share_mb >= 0.0
        assert inst.dram_gbps >= 0.0
        total_share += inst.cache_share_mb
    assert total_share <= machine.llc_mb * (1.0 + 1e-6)
    assert 0.0 <= sol.cpu_utilization <= 1.0
    assert sol.mem_bw_utilization >= 0.0
    assert sol.mem_latency_ns >= machine.mem_latency_ns


@settings(max_examples=40, deadline=None)
@given(job_mixes)
def test_less_cache_never_helps(mix):
    instances = build(mix)
    big = solve_colocation(MachinePerf(llc_mb=60.0), instances)
    small = solve_colocation(MachinePerf(llc_mb=24.0), instances)
    assert small.total_mips <= big.total_mips * (1.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(job_mixes)
def test_lower_frequency_never_helps(mix):
    instances = build(mix)
    fast = solve_colocation(MachinePerf(max_freq_ghz=2.9), instances)
    slow = solve_colocation(MachinePerf(max_freq_ghz=1.8), instances)
    assert slow.total_mips <= fast.total_mips * (1.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(job_mixes)
def test_disabling_smt_never_helps(mix):
    instances = build(mix)
    on = solve_colocation(MachinePerf(smt_enabled=True), instances)
    off = solve_colocation(MachinePerf(smt_enabled=False), instances)
    assert off.total_mips <= on.total_mips * (1.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(machines, job_mixes)
def test_deterministic(machine, mix):
    a = solve_colocation(machine, build(mix))
    b = solve_colocation(machine, build(mix))
    assert a.total_mips == b.total_mips
    assert a.mem_latency_ns == b.mem_latency_ns


@settings(max_examples=40, deadline=None)
@given(job_mixes)
def test_adding_a_job_never_speeds_up_existing_jobs(mix):
    machine = MachinePerf()
    instances = build(mix)
    before = solve_colocation(machine, instances)
    intruder = RunningInstance(signature=LP_JOBS["mcf"], load=1.0)
    after = solve_colocation(machine, instances + [intruder])
    for b, a in zip(before.instances, after.instances):
        assert a.mips <= b.mips * (1.0 + 1e-6)
