"""Regression tests for the solve memo (`contention._SolveCache`).

The historical hazard: replaying a scenario under two feature variants
(same instances, different machine config) must never alias onto one
cache entry — a stale solve from the baseline machine silently
corrupting the feature measurement.  The key therefore expands *every*
``MachinePerf`` field; these tests pin that down field by field and
cover the LRU/statistics surface plus the batched cache-partition path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.perfmodel import MachinePerf, RunningInstance, solve_colocation
from repro.perfmodel.batch import solve_colocation_many
from repro.perfmodel.contention import (
    _SolveCache,
    solve_colocation_cached,
)
from repro.workloads import HP_JOBS, LP_JOBS

_CATALOGUE = {**HP_JOBS, **LP_JOBS}

# A distinct, valid override per MachinePerf field (each differs from
# the default), so the key-covers-every-field test cannot rot when the
# dataclass grows: a new field without an entry here fails loudly.
_FIELD_OVERRIDES = {
    "physical_cores": 16,
    "governor": "ondemand",
    "smt_enabled": False,
    "smt_speedup": 1.4,
    "min_freq_ghz": 1.0,
    "max_freq_ghz": 2.2,
    "llc_mb": 24.0,
    "mem_bw_gbps": 64.0,
    "mem_latency_ns": 95.0,
    "l2_hit_cycles": 14.0,
    "llc_hit_cycles": 44.0,
    "network_gbps": 25.0,
    "disk_mbps": 800.0,
}


def _instances(*pairs):
    return tuple(
        RunningInstance(signature=_CATALOGUE[name], load=load)
        for name, load in pairs
    )


@pytest.fixture(autouse=True)
def _clean_cache():
    solve_colocation_cached.cache_clear()
    yield
    solve_colocation_cached.cache_clear()


def test_override_table_covers_every_machine_field():
    assert set(_FIELD_OVERRIDES) == {
        field.name for field in dataclasses.fields(MachinePerf)
    }


@pytest.mark.parametrize("field", sorted(_FIELD_OVERRIDES))
def test_key_distinguishes_every_machine_field(field):
    base = MachinePerf()
    variant = dataclasses.replace(base, **{field: _FIELD_OVERRIDES[field]})
    instances = _instances(("DA", 1.0), ("mcf", 0.8))
    assert _SolveCache.make_key(base, instances) != _SolveCache.make_key(
        variant, instances
    )


def test_key_distinguishes_instances():
    machine = MachinePerf()
    assert _SolveCache.make_key(
        machine, _instances(("DA", 1.0))
    ) != _SolveCache.make_key(machine, _instances(("DA", 0.5)))


def _machine_with(**overrides):
    # MachinePerf validates positivity at construction; the cache key
    # must stay sound even for values that slip past validation
    # (defence in depth), so plant the payload directly.
    machine = MachinePerf()
    for name, value in overrides.items():
        object.__setattr__(machine, name, value)
    return machine


def test_key_never_aliases_negative_zero_machines():
    # -0.0 == 0.0 under tuple equality, so a naive value-tuple key would
    # alias two machines whose physics differ (1/x diverges).  The key
    # canonicalises floats via float.hex(), which keeps the sign.
    instances = _instances(("DA", 1.0), ("mcf", 0.8))
    positive = _machine_with(mem_bw_gbps=0.0)
    negative = _machine_with(mem_bw_gbps=-0.0)
    assert _SolveCache.make_key(
        positive, instances
    ) != _SolveCache.make_key(negative, instances)


def test_key_with_nan_field_is_self_consistent():
    # NaN != NaN would make such a key unmatchable even against itself
    # (every lookup a miss, every store a new entry); all NaN payloads
    # collapse onto one canonical token instead.
    instances = _instances(("DA", 1.0))
    broken = _machine_with(mem_latency_ns=float("nan"))
    key = _SolveCache.make_key(broken, instances)
    assert key == _SolveCache.make_key(broken, instances)
    cache = _SolveCache(maxsize=4)
    cache.store(key, "solved")
    assert cache.lookup(_SolveCache.make_key(broken, instances)) == "solved"


def test_feature_variants_never_share_a_stale_solve():
    # The original bug shape: solve the baseline first, then the feature
    # variant with identical instances — the second call must produce
    # the variant's own physics, not the cached baseline solution.
    instances = _instances(("WSC", 1.0), ("mcf", 1.0), ("DC", 0.85))
    baseline = MachinePerf()
    for field, value in _FIELD_OVERRIDES.items():
        solve_colocation_cached.cache_clear()
        variant = dataclasses.replace(baseline, **{field: value})
        from_cache_base = solve_colocation_cached(baseline, instances)
        from_cache_variant = solve_colocation_cached(variant, instances)
        assert from_cache_variant.machine == variant, field
        direct = solve_colocation(variant, instances)
        assert from_cache_variant.total_mips == direct.total_mips, field
        assert (
            from_cache_variant.mem_latency_ns == direct.mem_latency_ns
        ), field
        # And the baseline entry is still intact (no overwrite).
        assert solve_colocation_cached(baseline, instances) is from_cache_base


def test_cache_hit_returns_identical_object():
    machine = MachinePerf()
    instances = _instances(("GA", 0.9))
    first = solve_colocation_cached(machine, instances)
    info = solve_colocation_cached.cache_info()
    assert (info.hits, info.misses) == (0, 1)
    assert solve_colocation_cached(machine, instances) is first
    info = solve_colocation_cached.cache_info()
    assert (info.hits, info.misses) == (1, 1)


def test_cache_clear_resets_entries_and_stats():
    solve_colocation_cached(MachinePerf(), _instances(("GA", 0.9)))
    solve_colocation_cached.cache_clear()
    info = solve_colocation_cached.cache_info()
    assert (info.hits, info.misses, info.currsize) == (0, 0, 0)


def test_lru_eviction_drops_oldest_entry():
    cache = _SolveCache(maxsize=2)
    cache.store(("a",), "A")
    cache.store(("b",), "B")
    assert cache.lookup(("a",)) == "A"  # refresh "a"; "b" is now oldest
    cache.store(("c",), "C")
    assert cache.lookup(("b",)) is None
    assert cache.lookup(("a",)) == "A"
    assert cache.lookup(("c",)) == "C"
    assert cache.info().currsize == 2


def test_batched_many_partitions_hits_and_misses():
    machine = MachinePerf()
    scenarios = [
        list(_instances(("DA", 1.0), ("mcf", 0.8))),
        list(_instances(("WSV", 0.6))),
        list(_instances(("DA", 1.0), ("mcf", 0.8))),  # in-batch duplicate
    ]
    first = solve_colocation_many(
        machine, scenarios, solver="batched", cached=True
    )
    info = solve_colocation_cached.cache_info()
    # Three lookups: all miss, but the duplicate dedups to 2 solves.
    assert info.misses == 3
    assert info.currsize == 2
    assert first[0] is first[2]
    second = solve_colocation_many(
        machine, scenarios, solver="batched", cached=True
    )
    info = solve_colocation_cached.cache_info()
    assert info.hits == 3
    for a, b in zip(first, second):
        assert a is b


def test_scalar_and_batched_callers_share_one_cache():
    machine = MachinePerf()
    instances = _instances(("IA", 1.0), ("omnetpp", 1.0))
    scalar = solve_colocation_cached(machine, instances)
    [batched] = solve_colocation_many(
        machine, [list(instances)], solver="batched", cached=True
    )
    assert batched is scalar
    assert solve_colocation_cached.cache_info().hits == 1
