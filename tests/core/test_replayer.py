"""Unit tests for the Replayer (step 4)."""

import pytest

from repro.cluster import BASELINE, FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.cluster.machine import DEFAULT_SHAPE, SMALL_SHAPE
from repro.core import Replayer


@pytest.fixture()
def replayer():
    return Replayer(DEFAULT_SHAPE)


class TestReconstruct:
    def test_round_trip_preserves_jobs_and_loads(self, replayer, tiny_dataset):
        scenario = tiny_dataset[4]
        rebuilt = replayer.reconstruct(scenario)
        assert len(rebuilt) == len(scenario.instances)
        for original, copy in zip(scenario.instances, rebuilt):
            assert copy.signature.name == original.signature.name
            assert copy.load == pytest.approx(original.load, abs=1e-4)

    def test_rebuilt_signatures_come_from_catalogue(self, replayer, tiny_dataset):
        from repro.workloads import get_job

        rebuilt = replayer.reconstruct(tiny_dataset[0])
        for inst in rebuilt:
            assert inst.signature == get_job(inst.signature.name)


class TestReplay:
    def test_feature_causes_reduction(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[0], FEATURE_2_DVFS)
        assert measurement.reduction_pct > 0.0
        assert measurement.enabled.overall < measurement.baseline.overall

    def test_baseline_feature_is_noop(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[0], BASELINE)
        assert measurement.reduction_pct == pytest.approx(0.0, abs=1e-9)

    def test_job_reduction_for_present_job(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[2], FEATURE_1_CACHE)
        reduction = measurement.job_reduction_pct("DA")
        assert reduction > 0.0

    def test_job_reduction_for_absent_job_raises(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[2], FEATURE_1_CACHE)
        with pytest.raises(KeyError, match="not in scenario"):
            measurement.job_reduction_pct("GA")

    def test_replay_on_small_testbed_differs(self, tiny_dataset):
        big = Replayer(DEFAULT_SHAPE).replay(tiny_dataset[0], FEATURE_2_DVFS)
        small = Replayer(SMALL_SHAPE).replay(tiny_dataset[0], FEATURE_2_DVFS)
        assert big.reduction_pct != pytest.approx(small.reduction_pct, abs=1e-3)

    def test_measurement_carries_provenance(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[1], FEATURE_1_CACHE)
        assert measurement.feature is FEATURE_1_CACHE
        assert measurement.scenario.key == tiny_dataset[1].key

    def test_lp_only_scenario_replay(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[3], FEATURE_1_CACHE)
        # No HP jobs -> no managed performance to reduce.
        assert measurement.reduction_pct == 0.0
