"""Unit tests for representativeness diagnostics and uncertain estimates."""

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.core import (
    diagnose,
    estimate_all_job_impact,
    estimate_with_uncertainty,
)


@pytest.fixture(scope="module")
def report(small_flare):
    return diagnose(small_flare)


class TestDiagnose:
    def test_one_entry_per_group(self, report, small_flare):
        assert len(report.groups) == len(small_flare.representatives)

    def test_sizes_partition_dataset(self, report, small_flare):
        assert sum(g.size for g in report.groups) == len(small_flare.dataset)

    def test_representative_is_central(self, report):
        """The medoid must be at most as far from the centroid as the
        average member — that is its definition."""
        for group in report.groups:
            assert group.representative_distance <= (
                group.mean_member_distance + 1e-9
            )
            assert group.centrality <= 1.0 + 1e-9

    def test_distances_ordered(self, report):
        for group in report.groups:
            assert group.representative_distance <= group.max_member_distance

    def test_silhouette_bounds(self, report):
        assert -1.0 <= report.overall_silhouette <= 1.0
        for group in report.groups:
            assert -1.0 <= group.mean_silhouette <= 1.0

    def test_worst_group(self, report):
        worst = report.worst_group()
        assert worst.mean_member_distance == max(
            g.mean_member_distance for g in report.groups
        )

    def test_mean_centrality(self, report):
        assert 0.0 <= report.mean_centrality() <= 1.0 + 1e-9

    def test_render(self, report):
        text = report.render()
        assert "Representativeness" in text
        assert "silhouette" in text


class TestEstimateWithUncertainty:
    @pytest.fixture(scope="module")
    def uncertain(self, small_flare):
        return estimate_with_uncertainty(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_2_DVFS,
            members_per_group=3,
        )

    def test_point_near_medoid_estimate(self, small_flare, uncertain):
        medoid = estimate_all_job_impact(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_2_DVFS,
        )
        assert uncertain.reduction_pct == pytest.approx(
            medoid.reduction_pct, abs=1.5
        )

    def test_costs_scale_with_members(self, small_flare, uncertain):
        single = estimate_with_uncertainty(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_2_DVFS,
            members_per_group=1,
        )
        assert uncertain.evaluation_cost > single.evaluation_cost
        assert uncertain.members_per_group == 3

    def test_single_member_has_zero_stderr(self, small_flare):
        single = estimate_with_uncertainty(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_1_CACHE,
            members_per_group=1,
        )
        assert single.stderr_pct == pytest.approx(0.0, abs=1e-12)

    def test_interval_brackets_point(self, uncertain):
        low, high = uncertain.interval()
        assert low <= uncertain.reduction_pct <= high
        assert high - low == pytest.approx(2 * 1.96 * uncertain.stderr_pct)

    def test_matches_single_member_medoid(self, small_flare):
        """With m=1 the estimator degenerates to the paper's method."""
        single = estimate_with_uncertainty(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_1_CACHE,
            members_per_group=1,
        )
        medoid = estimate_all_job_impact(
            small_flare.representatives,
            small_flare.replayer,
            FEATURE_1_CACHE,
        )
        assert single.reduction_pct == pytest.approx(medoid.reduction_pct)

    def test_invalid_members_raises(self, small_flare):
        with pytest.raises(ValueError):
            estimate_with_uncertainty(
                small_flare.representatives,
                small_flare.replayer,
                FEATURE_1_CACHE,
                members_per_group=0,
            )
