"""Unit tests for the heterogeneous-fleet evaluator (§5.5)."""

import pytest

from repro.cluster import FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.cluster.machine import DEFAULT_SHAPE, SMALL_SHAPE
from repro.core import FleetEvaluator, FleetSegment


@pytest.fixture(scope="module")
def fleet():
    return FleetEvaluator.from_simulations(
        [(DEFAULT_SHAPE, 16), (SMALL_SHAPE, 8)],
        seed=31,
        target_unique_scenarios=80,
        n_clusters=6,
    )


class TestConstruction:
    def test_segments_built_per_shape(self, fleet):
        names = [segment.shape.name for segment in fleet.segments]
        assert names == ["default", "small"]

    def test_capacity_accounting(self, fleet):
        assert fleet.total_capacity_vcpus == 16 * 48 + 8 * 32
        weights = fleet.segment_weights()
        assert weights["default"] == pytest.approx(768 / 1024)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one segment"):
            FleetEvaluator([])

    def test_duplicate_shapes_rejected(self, fleet):
        seg = fleet.segments[0]
        with pytest.raises(ValueError, match="unique"):
            FleetEvaluator([seg, seg])

    def test_shape_model_mismatch_rejected(self, fleet):
        default_segment = fleet.segments[0]
        with pytest.raises(ValueError, match="does not match"):
            FleetSegment(
                shape=SMALL_SHAPE,
                n_machines=4,
                flare=default_segment.flare,
            )

    def test_invalid_machine_count(self, fleet):
        with pytest.raises(ValueError):
            FleetSegment(
                shape=DEFAULT_SHAPE,
                n_machines=0,
                flare=fleet.segments[0].flare,
            )


class TestEvaluation:
    def test_fleet_estimate_is_capacity_weighted_mean(self, fleet):
        estimate = fleet.evaluate(FEATURE_2_DVFS)
        manual = sum(
            weight * seg_estimate.reduction_pct
            for seg_estimate, weight in estimate.per_segment.values()
        )
        assert estimate.reduction_pct == pytest.approx(manual)

    def test_fleet_between_segment_extremes(self, fleet):
        estimate = fleet.evaluate(FEATURE_2_DVFS)
        reductions = [
            e.reduction_pct for e, _ in estimate.per_segment.values()
        ]
        assert min(reductions) <= estimate.reduction_pct <= max(reductions)

    def test_dvfs_smaller_on_small_shape(self, fleet):
        """The 1.8 GHz cap removes less headroom from a 2.6 GHz machine
        than from a 2.9 GHz one."""
        estimate = fleet.evaluate(FEATURE_2_DVFS)
        assert estimate.segment_reduction("small") < (
            estimate.segment_reduction("default")
        )

    def test_cost_sums_segments(self, fleet):
        estimate = fleet.evaluate(FEATURE_1_CACHE)
        assert estimate.evaluation_cost == sum(
            e.evaluation_cost for e, _ in estimate.per_segment.values()
        )

    def test_per_job_estimate(self, fleet):
        estimate = fleet.evaluate_job(FEATURE_2_DVFS, "WSC")
        assert estimate.reduction_pct > 0.0
        assert set(estimate.per_segment) <= {"default", "small"}

    def test_unknown_job_raises(self, fleet):
        with pytest.raises(ValueError, match="hosted by no fleet"):
            fleet.evaluate_job(FEATURE_2_DVFS, "not-a-job")

    def test_render(self, fleet):
        text = fleet.evaluate(FEATURE_2_DVFS).render()
        assert "fleet" in text
        assert "default" in text
