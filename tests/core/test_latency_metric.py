"""Unit tests for the pluggable tail-latency metric."""

import pytest

from repro.cluster import BASELINE, FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.cluster.machine import DEFAULT_SHAPE
from repro.core import (
    Replayer,
    estimate_all_job_impact,
    latency_scenario_performance,
    scenario_performance,
)


class TestLatencyScenarioPerformance:
    def test_same_shape_as_mips_metric(self, tiny_dataset):
        machine = DEFAULT_SHAPE.perf
        scenario = tiny_dataset[4]
        mips = scenario_performance(machine, scenario)
        latency = latency_scenario_performance(machine, scenario)
        assert set(latency.per_job) == set(mips.per_job)
        assert len(latency.per_instance) == len(mips.per_instance)

    def test_alone_scores_one(self, tiny_dataset):
        machine = DEFAULT_SHAPE.perf
        perf = latency_scenario_performance(machine, tiny_dataset[5])
        assert perf.overall == pytest.approx(1.0, abs=1e-9)

    def test_colocation_scores_below_one(self, tiny_dataset):
        machine = DEFAULT_SHAPE.perf
        perf = latency_scenario_performance(machine, tiny_dataset[0])
        assert 0.0 < perf.overall < 1.0

    def test_lp_only_scenario_empty(self, tiny_dataset):
        machine = DEFAULT_SHAPE.perf
        perf = latency_scenario_performance(machine, tiny_dataset[3])
        assert not perf.has_hp


class TestLatencyReplayer:
    @pytest.fixture()
    def replayer(self):
        return Replayer(DEFAULT_SHAPE, metric=latency_scenario_performance)

    def test_feature_degrades_latency(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[0], FEATURE_2_DVFS)
        assert measurement.reduction_pct > 0.0

    def test_baseline_feature_is_zero(self, replayer, tiny_dataset):
        measurement = replayer.replay(tiny_dataset[0], BASELINE)
        assert measurement.reduction_pct == pytest.approx(0.0, abs=1e-9)

    def test_latency_impact_exceeds_mips_impact(self, tiny_dataset):
        """Queueing amplification: the same feature hurts p99 more than
        it hurts throughput."""
        mips_replayer = Replayer(DEFAULT_SHAPE)
        lat_replayer = Replayer(
            DEFAULT_SHAPE, metric=latency_scenario_performance
        )
        scenario = tiny_dataset[4]
        mips = mips_replayer.replay(scenario, FEATURE_2_DVFS).reduction_pct
        latency = lat_replayer.replay(scenario, FEATURE_2_DVFS).reduction_pct
        assert latency > mips

    def test_plugs_into_estimators(self, small_flare):
        lat_replayer = Replayer(
            small_flare.dataset.shape, metric=latency_scenario_performance
        )
        estimate = estimate_all_job_impact(
            small_flare.representatives, lat_replayer, FEATURE_1_CACHE
        )
        assert estimate.reduction_pct > 0.0
        assert estimate.evaluation_cost <= len(small_flare.representatives)
