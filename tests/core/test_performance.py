"""Unit tests for the performance definitions."""

import pytest

from repro.cluster import BASELINE, FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.cluster.machine import DEFAULT_SHAPE
from repro.core import inherent_mips, mips_reduction_pct, scenario_performance
from repro.workloads import HP_JOBS


class TestInherentMips:
    def test_positive_for_all_hp_jobs(self):
        machine = DEFAULT_SHAPE.perf
        for sig in HP_JOBS.values():
            assert inherent_mips(machine, sig, 1.0) > 0.0

    def test_scales_with_load(self):
        machine = DEFAULT_SHAPE.perf
        sig = HP_JOBS["IA"]
        assert inherent_mips(machine, sig, 0.5) < inherent_mips(machine, sig, 1.0)

    def test_cached(self):
        machine = DEFAULT_SHAPE.perf
        a = inherent_mips(machine, HP_JOBS["GA"], 1.0)
        b = inherent_mips(machine, HP_JOBS["GA"], 1.0)
        assert a == b


class TestScenarioPerformance:
    def test_single_hp_alone_scores_one(self, tiny_dataset):
        scenario = tiny_dataset[5]  # WSC alone at 0.7 load
        perf = scenario_performance(DEFAULT_SHAPE.perf, scenario)
        assert perf.overall == pytest.approx(1.0, abs=1e-6)

    def test_colocated_hp_scores_below_one(self, tiny_dataset):
        scenario = tiny_dataset[0]  # WSC + GA
        perf = scenario_performance(DEFAULT_SHAPE.perf, scenario)
        assert perf.has_hp
        assert 0.0 < perf.overall < 1.0
        for value in perf.per_instance:
            assert 0.0 < value <= 1.0

    def test_lp_only_scenario_has_no_hp(self, tiny_dataset):
        scenario = tiny_dataset[3]
        perf = scenario_performance(DEFAULT_SHAPE.perf, scenario)
        assert not perf.has_hp
        assert perf.overall == 0.0
        assert perf.per_job == {}

    def test_per_job_averaging(self, tiny_dataset):
        scenario = tiny_dataset[2]  # DA x2 + WSV
        perf = scenario_performance(DEFAULT_SHAPE.perf, scenario)
        assert set(perf.per_job) == {"DA", "WSV"}
        da_values = perf.per_instance[:2]
        assert perf.per_job["DA"] == pytest.approx(sum(da_values) / 2)

    def test_feature_reduces_performance(self, tiny_dataset):
        scenario = tiny_dataset[0]
        base_machine = BASELINE(DEFAULT_SHAPE.perf)
        feat_machine = FEATURE_2_DVFS(DEFAULT_SHAPE.perf)
        base = scenario_performance(base_machine, scenario)
        feat = scenario_performance(
            feat_machine, scenario, normalize_machine=base_machine
        )
        assert feat.overall < base.overall

    def test_normalizer_cancels_in_reduction(self, tiny_dataset):
        """Reduction % must be identical whether the normaliser is the
        baseline machine or each configuration's own machine."""
        scenario = tiny_dataset[4]
        base_machine = BASELINE(DEFAULT_SHAPE.perf)
        feat_machine = FEATURE_1_CACHE(DEFAULT_SHAPE.perf)

        base = scenario_performance(base_machine, scenario)
        feat_fixed = scenario_performance(
            feat_machine, scenario, normalize_machine=base_machine
        )
        feat_own = scenario_performance(feat_machine, scenario)

        red_fixed = mips_reduction_pct(base.overall, feat_fixed.overall)
        # Own-normalised: ratio of raw MIPS is recoverable per instance.
        ratios = [
            f / b
            for b, f in zip(base.per_instance, feat_own.per_instance)
        ]
        # Not exactly equal overall (different weighting), but every
        # instance's fixed-normaliser ratio equals its raw MIPS ratio.
        inherent_ratio = [
            ff / bb
            for bb, ff in zip(base.per_instance, feat_fixed.per_instance)
        ]
        for r_fixed in inherent_ratio:
            assert 0.0 < r_fixed <= 1.0
        assert red_fixed > 0.0


class TestMipsReduction:
    def test_basic(self):
        assert mips_reduction_pct(100.0, 90.0) == pytest.approx(10.0)

    def test_zero_baseline(self):
        assert mips_reduction_pct(0.0, 10.0) == 0.0

    def test_improvement_is_negative(self):
        assert mips_reduction_pct(100.0, 110.0) == pytest.approx(-10.0)
