"""Unit tests for metric refinement (step 1)."""

import numpy as np
import pytest

from repro.core import refine
from repro.telemetry import Profiler


@pytest.fixture(scope="module")
def profiled(small_sim):
    return Profiler(noise_sigma=0.02, seed=7).profile(small_sim.dataset)


class TestRefine:
    def test_prunes_known_duplicates(self, profiled):
        refined = refine(profiled, threshold=0.98)
        kept = set(refined.metric_names)
        # A perfectly-correlated pair never survives together (either one
        # of them or an even more central member of the family is kept).
        # Machine-scope pairs are exact duplicates; HP-scope ones are not,
        # because all HP counters read zero on LP-only machines.
        assert not (
            "MemTotalGBps-Machine" in kept
            and "MemTotalBytesPerSec-Machine" in kept
        )
        assert not (
            "LLC-MissRatio-Machine" in kept
            and "LLC-HitRatio-Machine" in kept
        )
        assert not ("LoadAverage" in kept and "BusyThreads-Machine" in kept)

    def test_reduces_metric_count_meaningfully(self, profiled):
        refined = refine(profiled, threshold=0.98)
        assert refined.n_metrics < profiled.n_metrics
        assert refined.n_metrics >= profiled.n_metrics // 2

    def test_matrix_matches_kept_specs(self, profiled):
        refined = refine(profiled)
        assert refined.matrix.shape == (
            profiled.n_scenarios,
            len(refined.specs),
        )
        for i, spec in enumerate(refined.specs):
            original_col = profiled.metric_names.index(spec.name)
            np.testing.assert_array_equal(
                refined.matrix[:, i], profiled.matrix[:, original_col]
            )

    def test_lower_threshold_prunes_more(self, profiled):
        loose = refine(profiled, threshold=0.995)
        tight = refine(profiled, threshold=0.8)
        assert tight.n_metrics < loose.n_metrics

    def test_dropped_descriptions_reference_names(self, profiled):
        refined = refine(profiled, threshold=0.98)
        descriptions = refined.dropped_descriptions()
        assert len(descriptions) == refined.report.n_dropped
        assert all("|r| >" in d for d in descriptions)

    def test_provenance_retained(self, profiled):
        refined = refine(profiled)
        assert refined.profiled is profiled
        assert refined.n_scenarios == profiled.n_scenarios
