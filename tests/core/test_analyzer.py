"""Unit tests for the Analyzer (steps 2–3)."""

import numpy as np
import pytest

from repro.core import Analyzer, AnalyzerConfig, refine
from repro.telemetry import Profiler


@pytest.fixture(scope="module")
def refined(small_sim):
    profiled = Profiler(noise_sigma=0.02, seed=7).profile(small_sim.dataset)
    return refine(profiled, threshold=0.98)


@pytest.fixture(scope="module")
def analysis(refined):
    return Analyzer(
        AnalyzerConfig(n_clusters=8, kmeans_restarts=4, seed=0)
    ).analyze(refined)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"variance_target": 0.0},
            {"variance_target": 1.5},
            {"n_components": 0},
            {"n_clusters": 1},
            {"cluster_counts": (), "n_clusters": None},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            AnalyzerConfig(**kwargs)


class TestHighLevelMetrics:
    def test_variance_target_met(self, analysis):
        assert analysis.explained_variance_at(
            analysis.n_components
        ) >= 0.95 - 1e-9

    def test_minimal_component_count(self, analysis):
        if analysis.n_components > 1:
            assert analysis.explained_variance_at(
                analysis.n_components - 1
            ) < 0.95

    def test_scores_are_whitened(self, analysis):
        std = analysis.scores.std(axis=0)
        np.testing.assert_allclose(std, 1.0, atol=1e-9)
        np.testing.assert_allclose(
            analysis.scores.mean(axis=0), 0.0, atol=1e-9
        )

    def test_explicit_component_override(self, refined):
        analysis = Analyzer(
            AnalyzerConfig(n_components=5, n_clusters=4, seed=0)
        ).analyze(refined)
        assert analysis.n_components == 5
        assert analysis.scores.shape[1] == 5

    def test_component_overflow_raises(self, refined):
        config = AnalyzerConfig(n_components=10_000, n_clusters=4)
        with pytest.raises(ValueError, match="exceeds"):
            Analyzer(config).analyze(refined)


class TestClustering:
    def test_fixed_k_skips_sweep(self, analysis):
        assert analysis.sweep is None
        assert analysis.n_clusters == 8

    def test_sweep_runs_when_k_unset(self, refined):
        analysis = Analyzer(
            AnalyzerConfig(
                cluster_counts=(2, 4, 6), kmeans_restarts=2, seed=0
            )
        ).analyze(refined)
        assert analysis.sweep is not None
        assert analysis.n_clusters in (2, 4, 6)

    def test_labels_cover_dataset(self, analysis, refined):
        assert analysis.labels.shape == (refined.n_scenarios,)
        assert np.unique(analysis.labels).size == analysis.n_clusters

    def test_cluster_weights_sum_to_one(self, analysis):
        assert analysis.cluster_weights.sum() == pytest.approx(1.0)
        assert (analysis.cluster_weights >= 0.0).all()

    def test_members_of(self, analysis, refined):
        total = sum(
            analysis.members_of(c).size for c in range(analysis.n_clusters)
        )
        assert total == refined.n_scenarios

    def test_members_of_bad_cluster_raises(self, analysis):
        with pytest.raises(ValueError):
            analysis.members_of(99)

    def test_deterministic(self, refined):
        config = AnalyzerConfig(n_clusters=6, kmeans_restarts=2, seed=3)
        a = Analyzer(config).analyze(refined)
        b = Analyzer(config).analyze(refined)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestProjection:
    def test_project_reproduces_training_scores(self, analysis, refined):
        projected = analysis.project(refined.matrix)
        np.testing.assert_allclose(projected, analysis.scores, atol=1e-8)

    def test_classify_reproduces_training_labels(self, analysis, refined):
        labels = analysis.classify(refined.matrix)
        np.testing.assert_array_equal(labels, analysis.labels)

    def test_classify_new_point(self, analysis, refined):
        # A perturbed copy of a training row lands in the same cluster.
        row = refined.matrix[10:11] * 1.001
        label = analysis.classify(row)[0]
        assert label == analysis.labels[10]
