"""Refit-equivalence battery: the fleet mode's safety proof.

Incremental refit (``repro.core.refit``) is only admissible because it
is *provably* equivalent to the from-scratch path it replaces.  This
module is that proof, as tests:

* warm-start on unchanged data is an exact fixed point (bit-identical);
* the refitted state is invariant to how ingestion batched the rows;
* incremental quality tracks the full refit within the paper's bound;
* serial and process-parallel refits agree byte for byte;
* unsound warm starts are refused (``mode="incremental"``) or fall
  back to a full re-fit of the spill (``mode="auto"``);
* a journaled fleet run killed mid-refit resumes to the bit-identical
  published model.

Equality is always on ``fitted_digest`` (or whole serialised files) —
never on approximate metrics — so any silent divergence of the two
paths fails loudly.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import textwrap
import time
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.core.refit import (
    RefitUnsoundError,
    refit,
    replay_refit,
)
from repro.io.serialization import fitted_digest, save_model
from repro.obs.monitor import DriftThresholds
from repro.runtime.executor import ProcessExecutor
from repro.store import LiveStore, ShardedScenarioStore
from repro.store.live import StoreSlice
from repro.store.metrics_store import MetricStore

CONFIG = FlareConfig(analyzer=AnalyzerConfig(n_clusters=6))

N0, N1, N2 = 60, 90, 120

#: The reduced 120-scenario simulation shifts per-metric scale between
#: its halves far more than a real fleet's stream would, so the default
#: scaler-drift gate (0.5) would force every refit here to the full
#: path.  Tests that exercise the *incremental* machinery relax the
#: gate; the gate's own policy behaviour is covered by
#: :class:`TestSoundnessGates`.
MAX_DRIFT = 10.0


def _build_store(path, dataset, shard_size: int, marks=(N0, N1, N2)):
    """Write *dataset*'s first rows as committed generations."""
    with LiveStore(path, dataset.shape, shard_size=shard_size) as live:
        start = 0
        for mark in marks:
            live.extend(dataset.scenarios[start:mark])
            live.commit()
            start = mark
    return ShardedScenarioStore.open(path)


@pytest.fixture(scope="module")
def fleet(small_sim, tmp_path_factory):
    """A grown store plus pristine generation-0 and -1 models.

    ``spill0``/``spill1`` are the spills exactly as gen 0 / gen 1 left
    them; refits *mutate* their spill, so tests take copies (via the
    ``spill`` fixture) instead of sharing these.
    """
    root = tmp_path_factory.mktemp("refit-fleet")
    store = _build_store(root / "store", small_sim.dataset, shard_size=16)
    spill0 = root / "spill0"
    gen0 = refit(StoreSlice(store, 0, N0), CONFIG, spill_dir=spill0)
    spill1 = root / "spill1"
    shutil.copytree(spill0, spill1)
    gen1 = refit(
        store,
        prev=gen0,
        spill_dir=spill1,
        trigger="drift:warn",
        max_scaler_drift=MAX_DRIFT,
    )
    assert gen1.lineage[-1].kind == "incremental"
    return SimpleNamespace(
        root=root,
        dataset=small_sim.dataset,
        store=store,
        spill0=spill0,
        gen0=gen0,
        spill1=spill1,
        gen1=gen1,
    )


@pytest.fixture()
def spill(fleet, tmp_path):
    """A private copy of the generation-0 spill, safe to mutate."""
    dst = tmp_path / "spill"
    shutil.copytree(fleet.spill0, dst)
    return dst


class TestWarmStartFixedPoint:
    def test_refit_on_unchanged_data_is_bit_identical(self, fleet, spill):
        again = refit(
            StoreSlice(fleet.store, 0, N0),
            prev=fleet.gen0,
            spill_dir=spill,
        )
        assert fitted_digest(again) == fitted_digest(fleet.gen0)
        entry = again.lineage[-1]
        assert entry.kind == "incremental"
        assert entry.n_new_rows == 0
        assert entry.parent_digest == fitted_digest(fleet.gen0)
        # Nothing was re-profiled: the spill still holds exactly N0 rows.
        assert MetricStore.open(spill).n_rows == N0

    def test_fixed_point_of_the_grown_model_too(self, fleet, tmp_path):
        spill = tmp_path / "spill1"
        shutil.copytree(fleet.spill1, spill)
        again = refit(fleet.store, prev=fleet.gen1, spill_dir=spill)
        assert fitted_digest(again) == fitted_digest(fleet.gen1)


class TestBatchingInvariance:
    """Same previous model + same total data ⇒ same bits, however the
    rows physically arrived (shard boundaries, ingestion batching)."""

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(shard_size=st.sampled_from([5, 9, 28]))
    def test_refit_digest_invariant_to_shard_boundaries(
        self, fleet, tmp_path_factory, shard_size
    ):
        root = tmp_path_factory.mktemp(f"shards-{shard_size}")
        store = _build_store(
            root / "store", fleet.dataset, shard_size=shard_size
        )
        spill = root / "spill"
        shutil.copytree(fleet.spill0, spill)
        grown = refit(
            store,
            prev=fleet.gen0,
            spill_dir=spill,
            trigger="drift:warn",
            max_scaler_drift=MAX_DRIFT,
        )
        assert fitted_digest(grown) == fitted_digest(fleet.gen1)

    def test_refit_digest_invariant_to_commit_boundaries(
        self, fleet, tmp_path
    ):
        # One giant commit instead of three generations.
        store = _build_store(
            tmp_path / "store", fleet.dataset, shard_size=16, marks=(N2,)
        )
        spill = tmp_path / "spill"
        shutil.copytree(fleet.spill0, spill)
        grown = refit(
            store,
            prev=fleet.gen0,
            spill_dir=spill,
            watermark=N0,
            trigger="drift:warn",
            max_scaler_drift=MAX_DRIFT,
        )
        assert fitted_digest(grown) == fitted_digest(fleet.gen1)


class TestReplay:
    def test_replay_plan_reproduces_the_refit_bit_for_bit(
        self, fleet, tmp_path
    ):
        plan = fleet.gen1._refit_plan
        assert plan is not None and plan["init"] is not None
        replayed = replay_refit(
            fleet.store, CONFIG, plan, spill_dir=tmp_path / "replay"
        )
        assert fitted_digest(replayed) == fitted_digest(fleet.gen1)

    def test_json_round_tripped_plan_still_reproduces(self, fleet, tmp_path):
        # The fleet journal carries the plan through JSON; doubles must
        # survive the round trip exactly.
        plan = fleet.gen1._refit_plan
        wire = json.loads(
            json.dumps(
                {
                    "k": plan["k"],
                    "init": np.asarray(plan["init"]).tolist(),
                    "block_rows": plan["block_rows"],
                    "sample_capacity": plan["sample_capacity"],
                }
            )
        )
        replayed = replay_refit(
            fleet.store, CONFIG, wire, spill_dir=tmp_path / "replay"
        )
        assert fitted_digest(replayed) == fitted_digest(fleet.gen1)


class TestSerialProcessEquivalence:
    @pytest.mark.slow
    def test_process_refit_is_byte_identical_to_serial(
        self, fleet, spill, tmp_path
    ):
        spill_b = tmp_path / "spill-b"
        shutil.copytree(fleet.spill0, spill_b)
        serial = refit(
            fleet.store,
            prev=fleet.gen0,
            spill_dir=spill,
            max_scaler_drift=MAX_DRIFT,
        )
        with ProcessExecutor(max_workers=2) as pool:
            parallel = refit(
                fleet.store,
                prev=fleet.gen0,
                spill_dir=spill_b,
                runtime=pool,
                max_scaler_drift=MAX_DRIFT,
            )
        a, b = tmp_path / "serial.json", tmp_path / "process.json"
        save_model(serial, a)
        save_model(parallel, b)
        assert a.read_bytes() == b.read_bytes()


class TestEquivalenceBattery:
    def test_incremental_tracks_full_refit_quality(self, fleet, tmp_path):
        started = time.perf_counter()
        full = refit(fleet.store, CONFIG, spill_dir=tmp_path / "full")
        full_wall = time.perf_counter() - started

        spill = tmp_path / "spill"
        shutil.copytree(fleet.spill0, spill)
        started = time.perf_counter()
        inc = refit(
            fleet.store,
            prev=fleet.gen0,
            spill_dir=spill,
            max_scaler_drift=MAX_DRIFT,
        )
        inc_wall = time.perf_counter() - started

        assert inc.lineage[-1].kind == "incremental"
        inc_sse = inc.representatives.baseline.sse_per_scenario
        full_sse = full.representatives.baseline.sse_per_scenario
        # The paper's acceptance bound: incremental error within 5%
        # relative of the full refit (the precise cost ratio is measured
        # by benchmarks/bench_refit.py and gated in CI).
        assert abs(inc_sse - full_sse) <= 0.05 * full_sse
        # Half the profiling and a single warm Lloyd run instead of a
        # restarted fit must be cheaper in wall time, loosely asserted
        # here to stay robust on loaded CI machines.
        assert inc_wall < full_wall

    def test_lineage_chain_is_auditable(self, fleet):
        gen0, gen1 = fleet.gen0.lineage[-1], fleet.gen1.lineage[-1]
        assert [e.generation for e in fleet.gen1.lineage] == [0, 1]
        assert gen0.kind == "full" and gen0.trigger == "initial"
        assert gen0.parent_digest is None
        assert gen0.n_scenarios == N0 and gen0.n_new_rows == N0
        assert gen1.trigger == "drift:warn"
        assert gen1.parent_digest == fitted_digest(fleet.gen0)
        assert gen1.source_digest == fleet.store.digest()
        assert gen1.n_scenarios == N2 and gen1.n_new_rows == N2 - N0


class TestSoundnessGates:
    def test_cluster_count_change_refuses_incremental(self, fleet, spill):
        other = FlareConfig(analyzer=AnalyzerConfig(n_clusters=4))
        with pytest.raises(RefitUnsoundError, match="cluster count"):
            refit(
                fleet.store,
                other,
                prev=fleet.gen0,
                spill_dir=spill,
                mode="incremental",
            )

    def test_cluster_count_change_falls_back_to_full(self, fleet, spill):
        other = FlareConfig(analyzer=AnalyzerConfig(n_clusters=4))
        grown = refit(fleet.store, other, prev=fleet.gen0, spill_dir=spill)
        entry = grown.lineage[-1]
        assert entry.kind == "full"
        assert entry.trigger.endswith("+cluster-count")
        assert grown.analysis.n_clusters == 4
        # The fallback re-fits (and re-profiles) from row zero.
        assert entry.n_new_rows == N2

    def test_scaler_drift_refuses_incremental(self, fleet, spill):
        with pytest.raises(RefitUnsoundError, match="drifted"):
            refit(
                fleet.store,
                prev=fleet.gen0,
                spill_dir=spill,
                mode="incremental",
                max_scaler_drift=-1.0,
            )

    def test_scaler_drift_falls_back_without_reprofiling(self, fleet, spill):
        grown = refit(
            fleet.store,
            prev=fleet.gen0,
            spill_dir=spill,
            max_scaler_drift=-1.0,
        )
        entry = grown.lineage[-1]
        assert entry.kind == "full"
        assert entry.trigger.endswith("+scaler-drift")
        # The drift gate fires *after* profiling: only the new rows were
        # profiled even though the clustering restarted from scratch.
        assert entry.n_new_rows == N2 - N0
        assert MetricStore.open(spill).n_rows == N2

    def test_refit_rejects_foreign_spill(self, fleet, tmp_path):
        # A spill holding more rows than the source covers cannot be the
        # previous fit's spill for this source.
        spill = tmp_path / "spill"
        shutil.copytree(fleet.spill1, spill)
        with pytest.raises(ValueError, match="spill"):
            refit(
                StoreSlice(fleet.store, 0, N0),
                prev=fleet.gen0,
                spill_dir=spill,
            )


class TestWatchLoop:
    def _tail(self, fleet, index=0):
        from repro.cli import _SegmentReplay

        return _SegmentReplay(fleet.store, [N0, N1, N2], index)

    def test_healthy_stream_leaves_the_model_alone(self, fleet, spill):
        calm = DriftThresholds(
            psi_warn=1e9,
            psi_alert=1e9,
            novelty_warn=1.1,
            novelty_alert=1.1,
            sse_ratio_warn=1e9,
            sse_ratio_alert=1e9,
        )
        decisions = list(
            fleet.gen0.watch(
                self._tail(fleet), spill_dir=spill, thresholds=calm
            )
        )
        # The loop terminated (healthy rows are not absorbed, but a
        # stream that stopped growing is not re-scored forever).
        assert decisions and all(d.action == "none" for d in decisions)
        assert all(d.status == "healthy" for d in decisions)
        assert decisions[-1].model is fleet.gen0

    def test_drifting_stream_refits_and_converges(self, fleet, spill):
        paranoid = DriftThresholds(psi_warn=-1.0, psi_alert=-1.0)
        decisions = list(
            fleet.gen0.watch(
                self._tail(fleet),
                spill_dir=spill,
                thresholds=paranoid,
                max_scaler_drift=MAX_DRIFT,
            )
        )
        assert [d.cycle for d in decisions] == [1, 2]
        assert [d.watermark for d in decisions] == [N0, N1]
        assert all(d.status == "alert" for d in decisions)
        assert all(d.action.startswith("refit:") for d in decisions)
        final = decisions[-1].model
        assert int(final.analysis.labels.shape[0]) == N2
        assert [e.generation for e in final.lineage] == [0, 1, 2]

    def test_watch_bootstraps_a_missing_spill(self, fleet, tmp_path):
        # A model from plain Flare.fit has no persistent spill; the loop
        # must rebuild one (cycle 0) before incremental refits can run.
        model = Flare(CONFIG).fit(StoreSlice(fleet.store, 0, N0))
        paranoid = DriftThresholds(psi_warn=-1.0, psi_alert=-1.0)
        decisions = list(
            model.watch(
                self._tail(fleet),
                spill_dir=tmp_path / "spill",
                thresholds=paranoid,
                max_scaler_drift=MAX_DRIFT,
            )
        )
        boot = decisions[0]
        assert boot.cycle == 0
        assert boot.status == "bootstrap"
        assert boot.action == "refit:full"
        assert MetricStore.open(tmp_path / "spill").n_rows == N2
        assert all(
            d.action == "refit:incremental" for d in decisions[1:]
        )


@pytest.mark.slow
class TestFleetCrashResume:
    """SIGKILL mid-refit, then ``repro fleet --resume``: the published
    model must be byte-identical to an uninterrupted run and the ledger
    must stay coherent (no duplicated generations or cycles)."""

    ARGS = [
        "--seed",
        "11",
        "--days",
        "1.0",
        "--segment-days",
        "0.25",
        "--scenarios",
        "48",
        "--shard-size",
        "16",
        "--clusters",
        "5",
    ]

    # The gen-0 fit is StreamingKMeans.fit call #1; the first drift (or
    # final) refit is call #2 — killing there always leaves a journaled
    # cycle behind plus a spill extended past the journaled watermark,
    # the exact crash window --resume must absorb.
    DRIVER = textwrap.dedent(
        """
        import os, sys

        kill_at = int(sys.argv[1])
        if kill_at > 0:
            from repro.stats.kmeans import StreamingKMeans

            real = StreamingKMeans.fit
            state = {"calls": 0}

            def fit(self, *args, **kwargs):
                state["calls"] += 1
                if state["calls"] == kill_at:
                    os._exit(9)
                return real(self, *args, **kwargs)

            StreamingKMeans.fit = fit
        from repro.cli import main

        sys.exit(main(sys.argv[2:]))
        """
    )

    def _run(self, tmp_path, tag, *, kill_at=0, resume=False):
        out = tmp_path / f"model-{tag}.json"
        argv = [
            sys.executable,
            str(tmp_path / "driver.py"),
            str(kill_at),
            "fleet",
            # The store rebuild is deterministic, so every run shares
            # one directory — which also keeps the saved models'
            # embedded store reference (path + digest) identical.
            "--store",
            str(tmp_path / "store"),
            "--spill",
            str(tmp_path / f"spill-{tag}"),
            "--out",
            str(out),
            "--checkpoint",
            str(tmp_path / f"ck-{tag}"),
            "--ledger",
            str(tmp_path / f"ledger-{tag}.jsonl"),
            *self.ARGS,
        ]
        if resume:
            argv.append("--resume")
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            argv, capture_output=True, text=True, cwd=tmp_path, env=env
        )
        return result, out

    def test_killed_run_resumes_to_identical_model(self, tmp_path):
        (tmp_path / "driver.py").write_text(self.DRIVER)

        control, control_out = self._run(tmp_path, "control")
        assert control.returncode == 0, control.stderr

        killed, _ = self._run(tmp_path, "chaos", kill_at=2)
        assert killed.returncode == 9
        journal = tmp_path / "ck-chaos" / "fleet-journal.jsonl"
        assert journal.exists(), "the kill landed before cycle 0 finished"

        resumed, chaos_out = self._run(tmp_path, "chaos", resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert "resume: restored cycle" in resumed.stdout

        # Byte-for-byte: digest, lineage, replay plan, store reference.
        assert chaos_out.read_bytes() == control_out.read_bytes()

        # Ledger coherence across kill + resume: every refit generation
        # recorded exactly once (the killed cycle recorded nothing; the
        # resume replays it without re-recording).
        records = [
            json.loads(line)
            for line in (tmp_path / "ledger-chaos.jsonl")
            .read_text()
            .splitlines()
            if line.strip()
        ]
        generations = [
            r["labels"]["generation"]
            for r in records
            if r["kind"] == "refit"
        ]
        assert generations == sorted(set(generations), key=int)

        # Journal coherence: cycles strictly increasing, one line each.
        cycles = [
            json.loads(line)["cycle"]
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        assert cycles == sorted(set(cycles))

        # Idempotent resume: re-running the now-*completed* run
        # republishes the journaled model verbatim instead of stacking
        # another (fixed-point, but lineage-growing) refit on top.
        again, again_out = self._run(tmp_path, "chaos", resume=True)
        assert again.returncode == 0, again.stderr
        assert "previous run completed; republishing" in again.stdout
        assert again_out.read_bytes() == control_out.read_bytes()
        assert journal.read_text().count("\n") == len(cycles)
