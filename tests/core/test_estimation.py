"""Unit tests for the FLARE estimators."""

import pytest

from repro.cluster import FEATURE_1_CACHE, FEATURE_2_DVFS
from repro.core import (
    Replayer,
    estimate_all_job_impact,
    estimate_per_job_impact,
)


@pytest.fixture(scope="module")
def reps(small_flare):
    return small_flare.representatives


@pytest.fixture(scope="module")
def replayer(small_flare):
    return Replayer(small_flare.dataset.shape)


class TestAllJobEstimate:
    def test_weighted_average_of_clusters(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        manual = sum(
            c.weight * c.reduction_pct for c in estimate.per_cluster
        )
        assert estimate.reduction_pct == pytest.approx(manual)

    def test_weights_renormalised(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        assert sum(c.weight for c in estimate.per_cluster) == pytest.approx(1.0)

    def test_cost_is_at_most_cluster_count(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        assert 1 <= estimate.evaluation_cost <= len(reps)
        assert estimate.evaluation_cost == len(estimate.per_cluster)

    def test_estimate_within_cluster_extremes(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_2_DVFS)
        reductions = [c.reduction_pct for c in estimate.per_cluster]
        assert min(reductions) <= estimate.reduction_pct <= max(reductions)

    def test_job_name_is_none(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        assert estimate.job_name is None

    def test_cluster_reductions_mapping(self, reps, replayer):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        mapping = estimate.cluster_reductions()
        assert len(mapping) == len(estimate.per_cluster)
        for impact in estimate.per_cluster:
            assert mapping[impact.cluster_id] == impact.reduction_pct

    def test_representatives_host_hp_jobs(self, reps, replayer, small_flare):
        estimate = estimate_all_job_impact(reps, replayer, FEATURE_1_CACHE)
        for impact in estimate.per_cluster:
            scenario = next(
                s
                for s in small_flare.dataset.scenarios
                if s.scenario_id == impact.scenario_id
            )
            assert scenario.hp_instances


class TestPerJobEstimate:
    def test_measures_only_hosting_scenarios(self, reps, replayer, small_flare):
        estimate = estimate_per_job_impact(
            reps, replayer, FEATURE_1_CACHE, "WSC"
        )
        for impact in estimate.per_cluster:
            scenario = next(
                s
                for s in small_flare.dataset.scenarios
                if s.scenario_id == impact.scenario_id
            )
            assert scenario.count_of("WSC") > 0

    def test_weighted_by_job_instances(self, reps, replayer):
        estimate = estimate_per_job_impact(
            reps, replayer, FEATURE_1_CACHE, "WSC"
        )
        assert sum(c.weight for c in estimate.per_cluster) == pytest.approx(1.0)
        manual = sum(c.weight * c.reduction_pct for c in estimate.per_cluster)
        assert estimate.reduction_pct == pytest.approx(manual)

    def test_job_name_recorded(self, reps, replayer):
        estimate = estimate_per_job_impact(
            reps, replayer, FEATURE_1_CACHE, "GA"
        )
        assert estimate.job_name == "GA"

    def test_unknown_job_raises(self, reps, replayer):
        with pytest.raises(ValueError, match="does not appear"):
            estimate_per_job_impact(
                reps, replayer, FEATURE_1_CACHE, "not-a-job"
            )

    def test_fallback_scenario_may_differ_from_representative(
        self, reps, replayer
    ):
        """When a representative lacks the job, the next-nearest member is
        used — so at least sometimes the measured scenario is not the
        group's representative."""
        estimate = estimate_per_job_impact(
            reps, replayer, FEATURE_1_CACHE, "WSC"
        )
        rep_ids = {g.representative_index for g in reps.groups}
        measured_ids = {c.scenario_id for c in estimate.per_cluster}
        # All measured scenarios are group members; not necessarily reps.
        assert measured_ids  # non-empty
        assert measured_ids <= {
            idx for g in reps.groups for idx in g.ranked_members
        }
