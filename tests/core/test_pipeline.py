"""Unit tests for the end-to-end Flare pipeline facade."""

import numpy as np
import pytest

from repro.cluster import (
    BestFitPackingScheduler,
    DatacenterConfig,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    run_simulation,
)
from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.telemetry import Database


class TestFit:
    def test_fit_populates_all_stages(self, small_flare):
        assert small_flare.profiled.n_scenarios == len(small_flare.dataset)
        assert small_flare.refined.n_metrics <= small_flare.profiled.n_metrics
        assert small_flare.analysis.n_clusters == 8
        assert len(small_flare.representatives) == 8
        assert len(small_flare.interpretations) == (
            small_flare.analysis.n_components
        )

    def test_unfitted_access_raises(self):
        flare = Flare()
        with pytest.raises(RuntimeError, match="fit"):
            _ = flare.analysis
        with pytest.raises(RuntimeError):
            flare.evaluate(FEATURE_1_CACHE)

    def test_too_small_dataset_rejected(self, tiny_dataset):
        from repro.cluster import ScenarioDataset

        single = ScenarioDataset(
            shape=tiny_dataset.shape, scenarios=tiny_dataset.scenarios[:1]
        )
        with pytest.raises(ValueError, match="at least 2"):
            Flare().fit(single)

    def test_fit_returns_self(self, tiny_dataset):
        flare = Flare(
            FlareConfig(analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2))
        )
        assert flare.fit(tiny_dataset) is flare

    def test_database_capture(self, tiny_dataset):
        db = Database()
        config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=2, kmeans_restarts=2)
        )
        Flare(config, database=db).fit(tiny_dataset)
        assert len(db.table("scenarios")) == len(tiny_dataset)


class TestEvaluate:
    def test_all_job_estimate(self, small_flare):
        estimate = small_flare.evaluate(FEATURE_1_CACHE)
        assert estimate.reduction_pct > 0.0
        assert estimate.evaluation_cost <= 8

    def test_per_job_estimate(self, small_flare):
        estimate = small_flare.evaluate_job(FEATURE_1_CACHE, "WSC")
        assert estimate.job_name == "WSC"
        assert estimate.reduction_pct > 0.0

    def test_estimates_deterministic(self, small_flare):
        a = small_flare.evaluate(FEATURE_2_DVFS).reduction_pct
        b = small_flare.evaluate(FEATURE_2_DVFS).reduction_pct
        assert a == b


class TestReweight:
    def test_exact_key_reweight_shifts_weights(self, small_flare):
        dataset = small_flare.dataset
        # Concentrate all observation time on cluster of scenario 0.
        durations = {dataset[0].key: 1000.0}
        reweighted = small_flare.reweight(durations)
        target_cluster = int(small_flare.analysis.labels[0])
        assert reweighted.analysis.cluster_weights[target_cluster] > (
            small_flare.analysis.cluster_weights[target_cluster]
        )

    def test_reweight_preserves_structure(self, small_flare):
        reweighted = small_flare.reweight(
            {small_flare.dataset[0].key: 10.0}
        )
        np.testing.assert_array_equal(
            reweighted.analysis.labels, small_flare.analysis.labels
        )
        assert reweighted.analysis.n_components == (
            small_flare.analysis.n_components
        )

    def test_reweight_by_classification(self, small_flare, small_sim):
        new_run = run_simulation(
            DatacenterConfig(seed=42, target_unique_scenarios=120),
            scheduler=BestFitPackingScheduler(),
        )
        reweighted = small_flare.reweight_by_classification(new_run.dataset)
        weights = reweighted.analysis.cluster_weights
        assert weights.sum() == pytest.approx(1.0)
        # The packing scheduler shifts mass between groups.
        assert not np.allclose(
            weights, small_flare.analysis.cluster_weights, atol=1e-3
        )

    def test_classification_of_own_dataset_matches_labels(self, small_flare):
        labels = small_flare.classify_dataset(small_flare.dataset)
        # Profiling noise is re-applied, so allow a small disagreement.
        agreement = (labels == small_flare.analysis.labels).mean()
        assert agreement > 0.9

    def test_reweighted_estimates_still_work(self, small_flare):
        reweighted = small_flare.reweight(
            {s.key: s.total_duration_s for s in small_flare.dataset.scenarios}
        )
        original = small_flare.evaluate(FEATURE_1_CACHE).reduction_pct
        same = reweighted.evaluate(FEATURE_1_CACHE).reduction_pct
        assert same == pytest.approx(original, abs=1e-9)
