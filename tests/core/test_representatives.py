"""Unit tests for representative extraction (step 3 output)."""

import numpy as np
import pytest

from repro.core import extract_representatives


@pytest.fixture(scope="module")
def reps(small_flare):
    return small_flare.representatives


class TestExtraction:
    def test_one_group_per_cluster(self, small_flare, reps):
        assert len(reps) == small_flare.analysis.n_clusters

    def test_groups_partition_dataset(self, reps, small_flare):
        all_members = [
            idx for group in reps.groups for idx in group.ranked_members
        ]
        assert sorted(all_members) == list(range(len(small_flare.dataset)))

    def test_weights_sum_to_one(self, reps):
        assert reps.weights().sum() == pytest.approx(1.0)

    def test_representative_is_nearest_to_centroid(self, small_flare, reps):
        scores = small_flare.analysis.scores
        for group in reps.groups:
            members = np.array(group.ranked_members)
            dists = np.linalg.norm(scores[members] - group.centroid, axis=1)
            assert dists[0] == pytest.approx(dists.min())

    def test_members_ranked_by_distance(self, small_flare, reps):
        scores = small_flare.analysis.scores
        for group in reps.groups:
            members = np.array(group.ranked_members)
            dists = np.linalg.norm(scores[members] - group.centroid, axis=1)
            assert (np.diff(dists) >= -1e-12).all()

    def test_representative_scenarios_accessor(self, reps):
        scenarios = reps.representative_scenarios()
        assert len(scenarios) == len(reps)
        for group, scenario in zip(reps.groups, scenarios):
            assert scenario.scenario_id == group.representative_index

    def test_mismatched_dataset_raises(self, small_flare, tiny_dataset):
        with pytest.raises(ValueError, match="covers"):
            extract_representatives(small_flare.analysis, tiny_dataset)


class TestLookups:
    def test_group_of_scenario(self, reps):
        group = reps.groups[0]
        member = group.ranked_members[-1]
        assert reps.group_of_scenario(member) is group

    def test_group_of_unknown_scenario_raises(self, reps, small_flare):
        with pytest.raises(KeyError):
            reps.group_of_scenario(len(small_flare.dataset) + 5)

    def test_first_member_where_walks_ranking(self, reps, small_flare):
        dataset = small_flare.dataset
        for group in reps.groups:
            found = group.first_member_where(
                dataset, lambda s: bool(s.hp_instances)
            )
            if found is None:
                continue
            # Everything nearer than the found member must fail the
            # predicate.
            for idx in group.ranked_members:
                if idx == found.scenario_id:
                    break
                assert not dataset[idx].hp_instances

    def test_first_member_where_none_when_no_match(self, reps, small_flare):
        for group in reps.groups:
            assert group.first_member_where(
                small_flare.dataset, lambda s: False
            ) is None

    def test_job_instance_weight(self, reps, small_flare):
        dataset = small_flare.dataset
        weights = dataset.weights()
        group = reps.groups[0]
        job = "WSC"
        expected = sum(
            weights[idx] * dataset[idx].count_of(job)
            for idx in group.ranked_members
        )
        assert reps.job_instance_weight(group, job) == pytest.approx(expected)

    def test_job_weights_cover_all_instances(self, reps, small_flare):
        """Summed across groups, job weight equals the dataset total."""
        dataset = small_flare.dataset
        weights = dataset.weights()
        for job in ("WSC", "mcf"):
            total = sum(
                weights[i] * s.count_of(job)
                for i, s in enumerate(dataset.scenarios)
            )
            by_groups = sum(
                reps.job_instance_weight(g, job) for g in reps.groups
            )
            assert by_groups == pytest.approx(total)


class TestColumnarDifferential:
    """Columnar member-search fast paths vs the scalar reference walk.

    ``first_member_with_job`` / ``first_member_with_hp`` answer from
    cached per-job count columns built in one sequential pass;
    ``ClusterGroup.first_member_where`` walks the ranking with random
    dataset access.  Same for ``job_instance_weight`` vs the inline
    weighted sum.  Selection must match exactly and weights bit for
    bit, or estimation silently changes which scenarios it replays.
    """

    def test_member_selection_matches_scalar_walk(self, reps, small_flare):
        dataset = small_flare.dataset
        jobs = sorted(
            {name for s in dataset.scenarios for name, _ in s.key}
        )
        for group in reps.groups:
            fast = reps.first_member_with_hp(group)
            slow = group.first_member_where(
                dataset, lambda s: bool(s.hp_instances)
            )
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert fast.scenario_id == slow.scenario_id
            for job in jobs:
                fast = reps.first_member_with_job(group, job)
                slow = group.first_member_where(
                    dataset, lambda s: s.count_of(job) > 0
                )
                assert (fast is None) == (slow is None), (
                    group.cluster_id,
                    job,
                )
                if fast is not None:
                    assert fast.scenario_id == slow.scenario_id

    def test_job_instance_weight_bitwise_equal(self, reps, small_flare):
        import struct

        dataset = small_flare.dataset
        weights = dataset.weights()
        jobs = sorted(
            {name for s in dataset.scenarios for name, _ in s.key}
        )
        for group in reps.groups:
            for job in jobs:
                fast = reps.job_instance_weight(group, job)
                slow = float(
                    sum(
                        weights[idx] * dataset[idx].count_of(job)
                        for idx in group.ranked_members
                    )
                )
                assert struct.pack("<d", fast) == struct.pack("<d", slow)

    def test_missing_job_yields_no_member_and_zero_weight(self, reps):
        for group in reps.groups:
            assert reps.first_member_with_job(group, "no-such-job") is None
            assert reps.job_instance_weight(group, "no-such-job") == 0.0
