"""Unit tests for PC interpretation (Figure 8 machinery)."""

import pytest

from repro.core import interpret_components


@pytest.fixture(scope="module")
def fitted(small_flare):
    return small_flare


class TestInterpretation:
    def test_one_interpretation_per_retained_pc(self, fitted):
        interps = fitted.interpretations
        assert len(interps) == fitted.analysis.n_components
        assert [i.index for i in interps] == list(range(len(interps)))

    def test_loadings_sorted_by_magnitude(self, fitted):
        for interp in fitted.interpretations:
            mags = [abs(e.loading) for e in interp.top_loadings]
            assert mags == sorted(mags, reverse=True)

    def test_labels_non_empty(self, fitted):
        for interp in fitted.interpretations:
            assert interp.label

    def test_describe_contains_signs_and_variance(self, fitted):
        line = fitted.interpretations[0].describe()
        assert "PC0" in line
        assert "% var" in line
        assert "+" in line or "-" in line

    def test_variance_ratios_descending(self, fitted):
        ratios = [i.explained_variance_ratio for i in fitted.interpretations]
        assert ratios == sorted(ratios, reverse=True)

    def test_top_n_respected(self, fitted):
        interps = interpret_components(
            fitted.analysis.pca,
            fitted.refined.specs,
            n_components=3,
            top_n=2,
        )
        assert len(interps) == 3
        for interp in interps:
            assert len(interp.top_loadings) <= 2

    def test_entry_describe_format(self, fitted):
        entry = fitted.interpretations[0].top_loadings[0]
        text = entry.describe()
        assert entry.spec.name in text
        assert entry.sign in ("+", "-")

    def test_spec_count_mismatch_raises(self, fitted):
        with pytest.raises(ValueError, match="do not match"):
            interpret_components(
                fitted.analysis.pca, fitted.refined.specs[:-1]
            )

    def test_bad_component_count_raises(self, fitted):
        with pytest.raises(ValueError):
            interpret_components(
                fitted.analysis.pca,
                fitted.refined.specs,
                n_components=10_000,
            )
