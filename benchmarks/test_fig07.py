"""Benchmark: regenerate Figure 7 — explained variance vs PC count."""

from repro.experiments import fig07_pca_variance


def test_fig07_pca_variance(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig07_pca_variance.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig07", result.render(), result)
    cum = result.cumulative_ratio[result.selected_components - 1]
    assert cum >= result.variance_target - 1e-9
