"""Benchmark: regenerate Figure 10 — cluster radar profiles."""

from repro.experiments import fig10_cluster_radar


def test_fig10_cluster_radar(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig10_cluster_radar.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig10", result.render(), result)
    assert result.n_clusters == 18
    # No dominant group; many clusters with ~5-10% weight (paper §5.2).
    assert result.max_weight() < 0.35
    assert result.min_center_separation() > 0.3
