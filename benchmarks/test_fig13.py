"""Benchmark: regenerate Figure 13 — evaluation cost vs accuracy."""

from repro.experiments import fig13_cost_accuracy


def test_fig13_cost_accuracy(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig13_cost_accuracy.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig13", result.render(), result)
    # Paper §5.4: ~50x cheaper than full-datacenter evaluation, and
    # sampling cannot match FLARE even at 10x FLARE's cost.
    assert result.cost_reduction_vs_datacenter > 40.0
    assert result.sampling_multiplier_to_match_flare() is None
