"""Benchmark: regenerate Figure 11 — per-cluster feature impacts."""

from repro.experiments import fig11_cluster_impacts


def test_fig11_cluster_impacts(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig11_cluster_impacts.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig11", result.render(), result)
    # Groups respond differently to the same feature (paper §5.2).
    for j in range(len(result.features)):
        assert result.spread_of(j) > 1.0
