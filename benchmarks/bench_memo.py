"""Solve-memo benchmark: warm-evaluate speedup and store-write throughput.

Exercises the two performance claims of the persistent solve memo PR
and appends one schema-versioned RunRecord per run to
``benchmarks/results/bench_memo.jsonl`` (gated by ``repro ledger
check`` in CI):

* **Warm evaluate.**  A full-datacenter evaluate is timed three ways:
  with no memo and cleared solve caches (the true fresh-solve cost),
  cold against a fresh ``store:`` memo (solving everything plus
  encoding/flushing the segments), and warm — the same evaluate again,
  first through a *fresh* memo instance that must decode everything
  from the segment files (the cross-run/cross-process case), then
  through the already-warm instance (the in-process service case).
  The acceptance bar is ``evaluate_warm_speedup_x`` (cold / warm)
  >= 3x, and the warm results must be bit-identical to the memo-off
  evaluate.

* **Store-write throughput.**  ``write_store`` is timed over a
  fleet-sized simulated dataset (shards of ``--store-shard-size``
  scenarios, best-of-``--store-repeats``) and recorded as
  ``store_write_mb_s`` (MiB/s, same units as ``bench_smoke``).  The
  acceptance bar is >= 12 MiB/s — 10x the seed writer's recorded
  ~1.2 MiB/s, which was per-row-Python-bound and therefore
  size-independent.  The smoke protocol's tiny-store figure (400
  scenarios, 64-scenario shards, dominated by per-file filesystem
  fixed costs) is recorded alongside as ``store_write_smoke_mb_s``
  for continuity with the seed measurement.

Every timing that repeats clears or isolates the relevant cache tier
first — the global in-process solve cache would otherwise serve every
"fresh" solve after the first and flatten the comparison.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import time

from repro.api import (
    DatacenterConfig,
    FEATURE_2_DVFS,
    evaluate_full_datacenter,
    run_simulation,
    write_store,
)
from repro.perfmodel.batch import _SOLVE_CACHE
from repro.perfmodel.contention import solve_colocation_cached
from repro.perfmodel.memo import SolveMemo

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "bench_memo.jsonl"
)

WARM_SPEEDUP_GATE_X = 3.0
STORE_WRITE_GATE_MB_S = 12.0


def _clear_solve_caches() -> None:
    solve_colocation_cached.cache_clear()
    _SOLVE_CACHE.clear()


def _truth_fingerprint(truth) -> tuple:
    return (
        truth.scenario_ids,
        truth.reductions_pct.tobytes(),
        truth.weights.tobytes(),
        tuple(sorted(truth.per_job.items())),
        truth.evaluation_cost,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--store-scenarios", type=int, default=4000)
    parser.add_argument("--store-shard-size", type=int, default=1024)
    parser.add_argument("--store-repeats", type=int, default=3)
    parser.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=None,
        help=f"run-ledger JSONL to append to (default: {RESULTS_PATH})",
    )
    args = parser.parse_args(argv)
    results_dir = RESULTS_PATH.parent
    results_dir.mkdir(parents=True, exist_ok=True)
    scratch = results_dir / "memo_bench_scratch"
    if scratch.exists():
        shutil.rmtree(scratch)

    print(
        f"simulating {args.scenarios} scenarios (seed {args.seed}) ...",
        flush=True,
    )
    dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    ).dataset

    # Prewarm the solver stack (numpy dispatch, signature tables) so no
    # timed section pays first-call costs, then measure the true fresh
    # evaluate with every solve-cache tier cleared.
    evaluate_full_datacenter(dataset, FEATURE_2_DVFS)
    off_times = []
    for _ in range(2):
        _clear_solve_caches()
        start = time.perf_counter()
        reference = evaluate_full_datacenter(dataset, FEATURE_2_DVFS)
        off_times.append(time.perf_counter() - start)
    memo_off_s = min(off_times)
    print(f"evaluate, memo off (caches cleared): {memo_off_s * 1e3:8.1f} ms")

    # Cold: fresh store directory each repeat — solves everything and
    # pays the full encode + atomic segment flush.
    cold_times = []
    for attempt in range(2):
        memo_dir = scratch / f"cold{attempt}"
        _clear_solve_caches()
        cold_memo = SolveMemo(f"store:{memo_dir}")
        start = time.perf_counter()
        cold_truth = evaluate_full_datacenter(
            dataset, FEATURE_2_DVFS, memo=cold_memo
        )
        cold_times.append(time.perf_counter() - start)
    evaluate_cold_s = min(cold_times)
    cold_stats = cold_memo.stats()
    memo_overhead_cold_pct = (
        (evaluate_cold_s - memo_off_s) / memo_off_s * 100.0
        if memo_off_s
        else 0.0
    )
    print(
        f"evaluate, cold store memo:           {evaluate_cold_s * 1e3:8.1f} ms "
        f"({cold_stats['store_entries']} entries in "
        f"{cold_stats['segments_written']} segments; "
        f"overhead {memo_overhead_cold_pct:+.1f}%)"
    )

    # Warm, cross-run: a fresh instance over the populated directory —
    # every solve decodes from the digest-verified segments.
    warm_spec = f"store:{scratch / 'cold0'}"
    cross_times = []
    for _ in range(2):
        _clear_solve_caches()
        cross_memo = SolveMemo(warm_spec)
        start = time.perf_counter()
        cross_truth = evaluate_full_datacenter(
            dataset, FEATURE_2_DVFS, memo=cross_memo
        )
        cross_times.append(time.perf_counter() - start)
    evaluate_warm_cross_s = min(cross_times)
    assert cross_memo.segments_written == 0

    # Warm, in-process: the instance is already hot (tier-1 LRU).
    warm_times = []
    for _ in range(2):
        start = time.perf_counter()
        warm_truth = evaluate_full_datacenter(
            dataset, FEATURE_2_DVFS, memo=cross_memo
        )
        warm_times.append(time.perf_counter() - start)
    evaluate_warm_s = min(warm_times)

    evaluate_warm_speedup_x = (
        evaluate_cold_s / evaluate_warm_s if evaluate_warm_s else 0.0
    )
    evaluate_cross_speedup_x = (
        evaluate_cold_s / evaluate_warm_cross_s
        if evaluate_warm_cross_s
        else 0.0
    )
    warm_speedup_ok = evaluate_warm_speedup_x >= WARM_SPEEDUP_GATE_X
    reference_print = _truth_fingerprint(reference)
    memo_identical = all(
        _truth_fingerprint(truth) == reference_print
        for truth in (cold_truth, cross_truth, warm_truth)
    )
    print(
        f"evaluate, warm cross-run:            "
        f"{evaluate_warm_cross_s * 1e3:8.1f} ms "
        f"(speedup {evaluate_cross_speedup_x:.2f}x)"
    )
    print(
        f"evaluate, warm in-process:           {evaluate_warm_s * 1e3:8.1f} ms "
        f"(speedup {evaluate_warm_speedup_x:.2f}x, gate >= "
        f"{WARM_SPEEDUP_GATE_X:.0f}x: {'ok' if warm_speedup_ok else 'FAILED'})"
    )
    print(f"memo-on results bit-identical to memo-off: {memo_identical}")

    # Store-write throughput at fleet shape.
    print(
        f"simulating {args.store_scenarios} scenarios for the store "
        "write bench ...",
        flush=True,
    )
    store_dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.store_scenarios
        )
    ).dataset
    store_path = scratch / "write_bench"
    write_times = []
    for _ in range(max(args.store_repeats, 1)):
        if store_path.exists():
            shutil.rmtree(store_path)
        start = time.perf_counter()
        store = write_store(
            store_dataset, store_path, shard_size=args.store_shard_size
        )
        write_times.append(time.perf_counter() - start)
    store_mb = store.bytes_total / (1024.0 * 1024.0)
    store_write_mb_s = store_mb / min(write_times)
    store_digest_ok = store.digest() == store_dataset.digest()
    store_write_ok = store_write_mb_s >= STORE_WRITE_GATE_MB_S
    print(
        f"store write (fleet, shard {args.store_shard_size}): "
        f"{store_mb:.2f} MiB at {store_write_mb_s:.1f} MiB/s "
        f"(gate >= {STORE_WRITE_GATE_MB_S:.0f}: "
        f"{'ok' if store_write_ok else 'FAILED'}); "
        f"digest ok: {store_digest_ok}"
    )

    # The smoke protocol's tiny-store figure, for continuity with the
    # seed measurement (not gated: per-file fixed costs dominate).
    smoke_path = scratch / "write_smoke"
    smoke_times = []
    for _ in range(max(args.store_repeats, 1)):
        if smoke_path.exists():
            shutil.rmtree(smoke_path)
        start = time.perf_counter()
        smoke_store = write_store(dataset, smoke_path, shard_size=64)
        smoke_times.append(time.perf_counter() - start)
    store_write_smoke_mb_s = (
        smoke_store.bytes_total / (1024.0 * 1024.0) / min(smoke_times)
    )
    print(
        f"store write (smoke protocol, shard 64): "
        f"{store_write_smoke_mb_s:.1f} MiB/s"
    )

    ok = bool(
        memo_identical and warm_speedup_ok and store_write_ok
        and store_digest_ok
    )

    from repro.api import RunLedger, record_run

    ledger = RunLedger(args.ledger if args.ledger else RESULTS_PATH)
    record = record_run(
        "bench_memo",
        config={
            "n_scenarios": len(dataset),
            "store_n_scenarios": len(store_dataset),
            "store_shard_size": args.store_shard_size,
            "seed": args.seed,
            "memo": warm_spec,
        },
        metrics={
            "memo_off_s": round(memo_off_s, 4),
            "evaluate_cold_s": round(evaluate_cold_s, 4),
            "evaluate_warm_cross_s": round(evaluate_warm_cross_s, 4),
            "evaluate_warm_s": round(evaluate_warm_s, 4),
            "evaluate_warm_speedup_x": round(evaluate_warm_speedup_x, 2),
            "evaluate_cross_speedup_x": round(evaluate_cross_speedup_x, 2),
            "memo_overhead_cold_pct": round(memo_overhead_cold_pct, 2),
            "memo_store_entries": cold_stats["store_entries"],
            "memo_segments_written": cold_stats["segments_written"],
            "store_mb": round(store_mb, 3),
            "store_write_mb_s": round(store_write_mb_s, 2),
            "store_write_smoke_mb_s": round(store_write_smoke_mb_s, 2),
        },
        labels={
            "memo_bit_identical": memo_identical,
            "warm_speedup_ok": warm_speedup_ok,
            "store_write_ok": store_write_ok,
            "store_digest_ok": store_digest_ok,
            "ok": ok,
        },
        ledger=ledger,
    )
    print(f"recorded {record.run_id} -> {ledger.path}")
    shutil.rmtree(scratch)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
