"""Benchmark: regenerate Figure 9 — SSE / silhouette vs cluster count."""

from repro.experiments import fig09_cluster_selection


def test_fig09_cluster_selection(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig09_cluster_selection.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig09", result.render(), result)
    assert result.chosen_k == 18
    # The knee suggestion lands in the same quality regime the paper
    # selects (k around 10-30; they pick 18 balancing quality vs cost).
    assert 6 <= result.knee_k <= 30
