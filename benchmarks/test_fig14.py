"""Benchmark: regenerate Figure 14 — heterogeneous machine shapes."""

from repro.experiments import fig14_heterogeneous


def test_fig14a_transfer_infeasibility(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig14_heterogeneous.run_transfer,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result("fig14a", result.render(), result)
    # Paper §5.5: default-shape co-locations do not reproduce on Small.
    assert result.infeasible_fraction > 0.2


def test_fig14b_rederived_representatives(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig14_heterogeneous.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig14b", result.render(), result)
    # Re-derived representatives track the new shape's truth and beat
    # load-testing (paper Fig. 14b).
    assert result.mean_flare_error() < 1.5
    assert result.mean_flare_error() < result.mean_loadtest_error()
