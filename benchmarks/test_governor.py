"""Benchmark: evaluating a DVFS-governor rollout (extension feature).

A governor switch is the purest instance of FLARE's target class — a
software policy change that preserves machine shape.  Its impact is
sharply nonlinear in machine occupancy (idle machines drop to the minimum
clock), which makes it a stress test for the representative grouping.
"""

from repro.baselines import evaluate_full_datacenter
from repro.cluster import Feature

ONDEMAND = Feature(
    name="ondemand-governor",
    description="switch the fleet to the ondemand DVFS governor",
    apply=lambda m: m.with_governor("ondemand"),
)


def test_governor_rollout(benchmark, paper_ctx, save_result):
    def evaluate():
        truth = evaluate_full_datacenter(paper_ctx.dataset, ONDEMAND)
        estimate = paper_ctx.flare.evaluate(ONDEMAND)
        return truth, estimate

    truth, estimate = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    error = abs(estimate.reduction_pct - truth.overall_reduction_pct)
    save_result(
        "governor",
        "Governor rollout (ondemand) — "
        f"truth {truth.overall_reduction_pct:.2f}%, "
        f"FLARE {estimate.reduction_pct:.2f}%, error {error:.2f} pp "
        f"(per-scenario spread {truth.reductions_pct.std():.1f} pp)",
    )
    assert error < 1.0
