"""Benchmark: regenerate Figure 2 — load-testing vs datacenter truth."""

from repro.experiments import fig02_loadtesting_pitfall


def test_fig02_loadtesting_pitfall(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig02_loadtesting_pitfall.run,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result("fig02", result.render(), result)
    # Shape check (paper §3.1): load-testing deviates from the truth.
    assert result.max_deviation_pct > 0.5
