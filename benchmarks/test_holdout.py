"""Benchmark: hold-out generalisation validation (extension)."""

from repro.experiments import holdout


def test_holdout_validation(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        holdout.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("holdout", result.render(), result)
    # Behaviour groups fitted on half the scenarios must estimate the
    # never-seen half accurately.
    assert result.max_reweighted_error() < 1.0
