"""Benchmark: ablations of FLARE's design choices (DESIGN.md §4).

Not a paper figure — quantifies, at paper scale, the design decisions the
paper motivates: PCA, whitening, K-means vs hierarchical, medoid
representatives, group-size weighting, the pruning threshold, and
cluster-count sensitivity (§5.4).
"""

from repro.experiments import ablations
from repro.reporting import render_table


def test_ablation_pipeline_variants(benchmark, paper_ctx, save_result):
    report = benchmark.pedantic(
        ablations.run_pipeline_variants,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_variants", report.render(), report)
    paper = report.row("paper (PCA+whiten+kmeans)")
    assert paper.max_error_pct < 1.0
    for row in report.rows:
        assert row.max_error_pct < 3.0


def test_ablation_threshold_sweep(benchmark, paper_ctx, save_result):
    rows = benchmark.pedantic(
        ablations.run_threshold_sweep,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_thresholds",
        render_table(
            ["threshold", "kept metrics", "mean err %"],
            [[t, k, e] for t, k, e in rows],
            title="Ablation — correlation-pruning threshold",
        ),
    )
    kept = [k for _, k, _ in rows]
    assert kept == sorted(kept, reverse=True)


def test_ablation_k_sensitivity(benchmark, paper_ctx, save_result):
    rows = benchmark.pedantic(
        ablations.run_k_sensitivity,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_k",
        render_table(
            ["k", "mean err %"],
            [[k, e] for k, e in rows],
            title="Ablation — cluster-count sensitivity (paper §5.4)",
        ),
    )
    by_k = dict(rows)
    # §5.4: beyond the chosen k, more clusters do not materially help.
    assert by_k[36] > by_k[18] - 0.5
