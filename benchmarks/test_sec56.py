"""Benchmark: regenerate §5.6 — scheduler-change handling."""

from repro.experiments import sec56_scheduler_change


def test_sec56_scheduler_change(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        sec56_scheduler_change.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("sec56", result.render(), result)
    # Reweighting from step 3 restores accuracy without re-profiling.
    assert result.improved
    assert result.reweighted_error_pct < 1.0
