"""Smoke benchmark: sampling-baseline wall-clock, serial vs process pool.

Times the 1,000-trial random-sampling baseline (the hottest fan-out
loop) with the serial executor and with a process pool, verifies the
estimates are bit-identical, and appends one JSON line per run to
``benchmarks/results/bench_smoke.jsonl``.  Run via ``make bench-smoke``.

On multi-core machines the process pool should win clearly (the
acceptance bar is >= 2x on >= 4 cores); on a single core it only adds
dispatch overhead — the record keeps ``cpu_count`` alongside the
timings so the two situations are distinguishable in the artefact.

The record also carries the observability overhead budget: the serial
run is repeated with the tracer enabled and the enabled-vs-disabled
delta recorded as ``tracing_overhead_pct``; the traced run's per-stage
span breakdown is folded in as ``stage_breakdown``.  The cost of the
*disabled* path (the no-op tracer the instrumentation hits when
``--trace`` is off) is measured directly — no-op span cost times the
span count the traced run produced, relative to the untraced wall time
— and recorded as ``disabled_overhead_pct``; the budget is < 2%.

Finally the resilience layer is billed the same way: the serial run is
repeated with an *enabled* ``ResilienceConfig`` (``retry_then_raise``,
no faults injected) so every chunk goes through the retry/fault
accounting path, and the delta is recorded as
``resilience_overhead_pct`` — same < 2% budget.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.api import (
    DatacenterConfig,
    FEATURE_2_DVFS,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    evaluate_by_sampling,
    evaluate_full_datacenter,
    run_simulation,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "bench_smoke.jsonl"
)


def _time_run(dataset, truth, executor, *, n_trials: int, seed: int):
    # The one-time truth computation is passed in precomputed so the
    # timing isolates the trial fan-out the executor actually affects.
    start = time.perf_counter()
    evaluation = evaluate_by_sampling(
        dataset,
        FEATURE_2_DVFS,
        sample_size=18,
        n_trials=n_trials,
        seed=seed,
        truth=truth,
        executor=executor,
    )
    return time.perf_counter() - start, evaluation.trials.estimates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=1000)
    parser.add_argument("--scenarios", type=int, default=300)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--workers",
        type=int,
        default=available_workers(),
        help="process-pool size for the parallel run",
    )
    args = parser.parse_args(argv)

    print(
        f"simulating {args.scenarios} scenarios "
        f"(seed {args.seed}) ...",
        flush=True,
    )
    dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    ).dataset

    truth = evaluate_full_datacenter(dataset, FEATURE_2_DVFS)

    serial_s, serial_estimates = _time_run(
        dataset, truth, SerialExecutor(), n_trials=args.trials, seed=args.seed
    )
    print(f"serial:         {serial_s:8.3f} s ({args.trials} trials)")

    # Observability overhead: repeat the serial run with a live tracer.
    # Best-of-two on both sides to damp scheduler noise in the small pct.
    from repro import obs

    serial2_s, _ = _time_run(
        dataset, truth, SerialExecutor(), n_trials=args.trials, seed=args.seed
    )
    untraced_s = min(serial_s, serial2_s)
    tracer = obs.enable()
    try:
        traced_a, traced_estimates = _time_run(
            dataset,
            truth,
            SerialExecutor(),
            n_trials=args.trials,
            seed=args.seed,
        )
        traced_b, _ = _time_run(
            dataset,
            truth,
            SerialExecutor(),
            n_trials=args.trials,
            seed=args.seed,
        )
    finally:
        obs.disable()
    traced_s = min(traced_a, traced_b)
    overhead_pct = (traced_s - untraced_s) / untraced_s * 100.0
    stage_breakdown = {
        name: {"count": int(agg["count"]), "wall_s": round(agg["wall_s"], 4)}
        for name, agg in tracer.totals().items()
    }
    traced_identical = bool(
        np.array_equal(serial_estimates, traced_estimates)
    )
    print(
        f"serial+tracer:  {traced_s:8.3f} s "
        f"(tracing overhead {overhead_pct:+.2f}%)"
    )

    # Disabled-path cost: the instrumentation points hit the no-op
    # tracer when tracing is off.  Time that no-op directly and scale
    # by how many spans the traced run actually produced.
    n_spans = sum(int(a["count"]) for a in tracer.totals().values())
    n_probe = 200_000
    probe_start = time.perf_counter()
    for _ in range(n_probe):
        with obs.span("probe"):
            pass
    noop_call_s = (time.perf_counter() - probe_start) / n_probe
    disabled_overhead_pct = (
        n_spans * noop_call_s / untraced_s * 100.0 if untraced_s else 0.0
    )
    print(
        f"disabled-path cost: {n_spans} no-op spans x "
        f"{noop_call_s * 1e9:.0f} ns = {disabled_overhead_pct:.4f}% "
        f"of the untraced run"
    )

    # Resilience overhead: the retry/fault accounting wrapper on the
    # chunk path, with no faults actually injected.  Best-of-two again.
    from repro.api import ResilienceConfig

    resilient = SerialExecutor(
        resilience=ResilienceConfig(policy="retry_then_raise")
    )
    resilient_a, resilient_estimates = _time_run(
        dataset, truth, resilient, n_trials=args.trials, seed=args.seed
    )
    resilient_b, _ = _time_run(
        dataset, truth, resilient, n_trials=args.trials, seed=args.seed
    )
    resilient_s = min(resilient_a, resilient_b)
    resilience_overhead_pct = (
        (resilient_s - untraced_s) / untraced_s * 100.0 if untraced_s else 0.0
    )
    resilient_identical = bool(
        np.array_equal(serial_estimates, resilient_estimates)
    )
    print(
        f"serial+resilience: {resilient_s:5.3f} s "
        f"(resilience overhead {resilience_overhead_pct:+.2f}%)"
    )

    with ProcessExecutor(max_workers=args.workers) as pool:
        # Warm the pool so worker start-up is not billed to the trials.
        pool.map(abs, range(args.workers))
        parallel_s, parallel_estimates = _time_run(
            dataset, truth, pool, n_trials=args.trials, seed=args.seed
        )
    print(
        f"process:{args.workers:<2}     {parallel_s:8.3f} s "
        f"(speedup {serial_s / parallel_s:.2f}x)"
    )

    identical = bool(np.array_equal(serial_estimates, parallel_estimates))
    print(f"bit-identical estimates: {identical}")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": available_workers(),
        "workers": args.workers,
        "n_trials": args.trials,
        "n_scenarios": len(dataset),
        "seed": args.seed,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical": identical,
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "tracing_overhead_pct": round(overhead_pct, 3),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "traced_bit_identical": traced_identical,
        "resilient_s": round(resilient_s, 4),
        "resilience_overhead_pct": round(resilience_overhead_pct, 3),
        "resilient_bit_identical": resilient_identical,
        "stage_breakdown": stage_breakdown,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    with RESULTS_PATH.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
    print(f"recorded -> {RESULTS_PATH}")
    return 0 if identical and traced_identical and resilient_identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
