"""Smoke benchmark: sampling-baseline wall-clock, serial vs process pool.

Times the 1,000-trial random-sampling baseline (the hottest fan-out
loop) with the serial executor and with a process pool, verifies the
estimates are bit-identical, and appends one JSON line per run to
``benchmarks/results/bench_smoke.jsonl``.  Run via ``make bench-smoke``.

On multi-core machines the process pool should win clearly (the
acceptance bar is >= 2x on >= 4 cores); on a single core it only adds
dispatch overhead — the record keeps ``cpu_count`` alongside the
timings so the two situations are distinguishable in the artefact.

The record also carries the observability overhead budget: the serial
run is repeated with the tracer enabled and the enabled-vs-disabled
delta recorded as ``tracing_overhead_pct``; the traced run's per-stage
span breakdown is folded into the record's ``stages``.  The < 2%
budget is *enforced* (fails ``ok``) only when the untraced section ran
at least ``MIN_GATE_WALL_S`` — on shorter sections the percentage is
dominated by fixed span setup and scheduler noise rather than by
per-span cost (historical records show 15–19% "overhead" on 2–40 ms
sections), so it is recorded for trend analysis but not gated.  The
cost of the *disabled* path (the no-op tracer the instrumentation hits
when ``--trace`` is off) is measured directly — no-op span cost times
the span count the traced run produced, relative to the untraced wall
time — and recorded as ``disabled_overhead_pct``; the budget is < 2%.

The fleet-health observatory is billed the same way: the drift monitor
rides the profiling pass, so its own cost — the per-batch drift
scoring — is probe-timed over cached profiled batches and billed
against the profiling wall it rides on (``monitor_overhead_pct``); the
run ledger's cost is the probe-timed fsync'd append of one record,
relative to the fit that emits it (``ledger_overhead_pct``).  Both
share the < 2% budget and the same minimum-wall enforcement rule; the
monitor's drift report is written to
``benchmarks/results/drift_report.json`` for CI upload.

Records append through the run-ledger API (``repro.obs.ledger``) as
schema-versioned ``RunRecord`` lines — config knobs under ``config``,
numeric results under ``metrics`` (nested values dotted, e.g.
``profile_speedup.2``), gate booleans under ``labels`` — so bench and
production runs share one schema and ``repro ledger check`` can gate
the trajectory.  Pre-observatory flat records in the same file remain
readable; the reader coerces them on load.

Finally the resilience layer is billed the same way: the serial run is
repeated with an *enabled* ``ResilienceConfig`` (``retry_then_raise``,
no faults injected) so every chunk goes through the retry/fault
accounting path, and the delta is recorded as
``resilience_overhead_pct`` — same < 2% budget.

The batched contention solver is benchmarked head-to-head against the
scalar reference: every simulated scenario is solved through both paths
(best-of-two each), the solutions must be bit-identical, and the ratio
is recorded as ``batch_solver_speedup_x`` (acceptance bar >= 5x)
alongside per-batch-size throughput in ``batch_throughput_scn_s``.

The zero-copy dispatch layer is gated per worker count: the scenario
store is profiled serially and through process pools of 1, 2 and 4
workers under shard-ref dispatch (pools warmed before timing), each
``profile_speedup[w]`` must reach ``0.8 * min(w, cpu_count)``, every
dispatch transport (shardref / shm / pickle / serial) must produce the
bit-identical metric matrix, and ``shm_leaked_segments`` must be zero
after the shared-memory runs.

The sharded scenario store (repro.store) is billed too: the simulated
dataset is written out as a store under ``benchmarks/results/smoke_store``
(kept as a CI artifact), re-read and decoded in full, and the write/read
throughputs recorded as ``store_write_mb_s`` / ``store_read_mb_s``.  A
full FLARE fit is then timed through the in-memory path and through the
out-of-core streaming path over that store; the delta is recorded as
``streaming_fit_overhead_pct`` (budget < 10%) and the cluster
assignments of the two paths must be identical on this smoke dataset.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.api import (
    DatacenterConfig,
    FEATURE_2_DVFS,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    evaluate_by_sampling,
    evaluate_full_datacenter,
    run_simulation,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "bench_smoke.jsonl"
)

#: Observability overhead budget (tracing / monitor / ledger), percent.
OVERHEAD_BUDGET_PCT = 2.0

#: Overhead percentages are only enforced when the base section ran at
#: least this long — below it, fixed setup costs and scheduler noise
#: dwarf the per-operation cost the budget is about.
MIN_GATE_WALL_S = 0.5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _time_run(dataset, truth, executor, *, n_trials: int, seed: int):
    # The one-time truth computation is passed in precomputed so the
    # timing isolates the trial fan-out the executor actually affects.
    start = time.perf_counter()
    evaluation = evaluate_by_sampling(
        dataset,
        FEATURE_2_DVFS,
        sample_size=18,
        n_trials=n_trials,
        seed=seed,
        truth=truth,
        executor=executor,
    )
    return time.perf_counter() - start, evaluation.trials.estimates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=1000)
    parser.add_argument("--scenarios", type=int, default=300)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--workers",
        type=int,
        default=available_workers(),
        help="process-pool size for the parallel run",
    )
    parser.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=None,
        help=(
            "run-ledger JSONL to append the record to "
            f"(default: {RESULTS_PATH})"
        ),
    )
    args = parser.parse_args(argv)

    print(
        f"simulating {args.scenarios} scenarios "
        f"(seed {args.seed}) ...",
        flush=True,
    )
    dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    ).dataset

    truth = evaluate_full_datacenter(dataset, FEATURE_2_DVFS)

    serial_s, serial_estimates = _time_run(
        dataset, truth, SerialExecutor(), n_trials=args.trials, seed=args.seed
    )
    print(f"serial:         {serial_s:8.3f} s ({args.trials} trials)")

    # Observability overhead: repeat the serial run with a live tracer.
    # Best-of-two on both sides to damp scheduler noise in the small pct.
    from repro import obs

    serial2_s, _ = _time_run(
        dataset, truth, SerialExecutor(), n_trials=args.trials, seed=args.seed
    )
    untraced_s = min(serial_s, serial2_s)
    tracer = obs.enable()
    try:
        traced_a, traced_estimates = _time_run(
            dataset,
            truth,
            SerialExecutor(),
            n_trials=args.trials,
            seed=args.seed,
        )
        traced_b, _ = _time_run(
            dataset,
            truth,
            SerialExecutor(),
            n_trials=args.trials,
            seed=args.seed,
        )
    finally:
        obs.disable()
    traced_s = min(traced_a, traced_b)
    overhead_pct = (traced_s - untraced_s) / untraced_s * 100.0
    stage_breakdown = {
        name: {"count": int(agg["count"]), "wall_s": round(agg["wall_s"], 4)}
        for name, agg in tracer.totals().items()
    }
    traced_identical = bool(
        np.array_equal(serial_estimates, traced_estimates)
    )
    tracing_gate_enforced = untraced_s >= MIN_GATE_WALL_S
    tracing_overhead_ok = (
        overhead_pct < OVERHEAD_BUDGET_PCT or not tracing_gate_enforced
    )
    print(
        f"serial+tracer:  {traced_s:8.3f} s "
        f"(tracing overhead {overhead_pct:+.2f}%, "
        f"budget < {OVERHEAD_BUDGET_PCT:.0f}% "
        + (
            "enforced"
            if tracing_gate_enforced
            else f"recorded only: untraced < {MIN_GATE_WALL_S}s"
        )
        + ")"
    )

    # Disabled-path cost: the instrumentation points hit the no-op
    # tracer when tracing is off.  Time that no-op directly and scale
    # by how many spans the traced run actually produced.
    n_spans = sum(int(a["count"]) for a in tracer.totals().values())
    n_probe = 200_000
    probe_start = time.perf_counter()
    for _ in range(n_probe):
        with obs.span("probe"):
            pass
    noop_call_s = (time.perf_counter() - probe_start) / n_probe
    disabled_overhead_pct = (
        n_spans * noop_call_s / untraced_s * 100.0 if untraced_s else 0.0
    )
    print(
        f"disabled-path cost: {n_spans} no-op spans x "
        f"{noop_call_s * 1e9:.0f} ns = {disabled_overhead_pct:.4f}% "
        f"of the untraced run"
    )

    # Resilience overhead: the retry/fault accounting wrapper on the
    # chunk path, with no faults actually injected.  Best-of-two again.
    from repro.api import ResilienceConfig

    resilient = SerialExecutor(
        resilience=ResilienceConfig(policy="retry_then_raise")
    )
    resilient_a, resilient_estimates = _time_run(
        dataset, truth, resilient, n_trials=args.trials, seed=args.seed
    )
    resilient_b, _ = _time_run(
        dataset, truth, resilient, n_trials=args.trials, seed=args.seed
    )
    resilient_s = min(resilient_a, resilient_b)
    resilience_overhead_pct = (
        (resilient_s - untraced_s) / untraced_s * 100.0 if untraced_s else 0.0
    )
    resilient_identical = bool(
        np.array_equal(serial_estimates, resilient_estimates)
    )
    print(
        f"serial+resilience: {resilient_s:5.3f} s "
        f"(resilience overhead {resilience_overhead_pct:+.2f}%)"
    )

    with ProcessExecutor(max_workers=args.workers) as pool:
        # Warm the pool so worker start-up is not billed to the trials.
        pool.map(abs, range(args.workers))
        parallel_s, parallel_estimates = _time_run(
            dataset, truth, pool, n_trials=args.trials, seed=args.seed
        )
    print(
        f"process:{args.workers:<2}     {parallel_s:8.3f} s "
        f"(speedup {serial_s / parallel_s:.2f}x)"
    )

    identical = bool(np.array_equal(serial_estimates, parallel_estimates))
    print(f"bit-identical estimates: {identical}")

    # Batched contention solver vs the scalar reference: solve every
    # simulated scenario on the baseline machine through both paths,
    # best-of-two, and verify the solutions are bit-identical (frozen
    # dataclasses compare field-by-field).  The acceptance bar for the
    # vectorised path is >= 5x on this population.
    from repro.api import BASELINE, solve_colocation, solve_colocation_batch

    solver_machine = BASELINE(dataset.shape.perf)
    population = [list(s.instances) for s in dataset.scenarios]

    def _solve_scalar():
        return [solve_colocation(solver_machine, inst) for inst in population]

    scalar_runs = [_timed(_solve_scalar) for _ in range(2)]
    scalar_solver_s = min(t for t, _ in scalar_runs)
    batched_runs = [
        _timed(lambda: solve_colocation_batch(solver_machine, population))
        for _ in range(2)
    ]
    batched_solver_s = min(t for t, _ in batched_runs)
    batch_identical = scalar_runs[0][1] == batched_runs[0][1]
    batch_solver_speedup_x = (
        scalar_solver_s / batched_solver_s if batched_solver_s else 0.0
    )
    print(
        f"solver: scalar {scalar_solver_s:.3f} s, "
        f"batched {batched_solver_s:.3f} s "
        f"(speedup {batch_solver_speedup_x:.1f}x); "
        f"bit-identical solutions: {batch_identical}"
    )

    # Throughput at several batch sizes, so regressions in the batch
    # layout (padding waste, per-row Python overhead) are visible even
    # when the headline speedup holds.
    batch_throughput_scn_s = {}
    for size in sorted({8, 32, 128, len(population)}):
        if size > len(population):
            continue

        def _solve_chunked(chunk=size):
            for start in range(0, len(population), chunk):
                solve_colocation_batch(
                    solver_machine, population[start : start + chunk]
                )

        chunked_s = min(_timed(_solve_chunked)[0] for _ in range(2))
        batch_throughput_scn_s[str(size)] = round(
            len(population) / chunked_s if chunked_s else 0.0, 1
        )
    print(f"solver throughput (scenarios/s by batch size): "
          f"{batch_throughput_scn_s}")

    # Scenario-store throughput + streaming-fit overhead.
    from repro.api import Flare, FlareConfig, write_store

    store_path = RESULTS_PATH.parent / "smoke_store"
    write_start = time.perf_counter()
    store = write_store(
        dataset, store_path, shard_size=64, overwrite=True
    )
    write_s = time.perf_counter() - write_start
    store_mb = store.bytes_total / (1024.0 * 1024.0)

    read_start = time.perf_counter()
    decoded_rows = sum(len(batch) for batch in store.iter_batches())
    read_s = time.perf_counter() - read_start
    assert decoded_rows == len(dataset)
    store_write_mb_s = store_mb / write_s if write_s else 0.0
    store_read_mb_s = store_mb / read_s if read_s else 0.0
    print(
        f"store: {store_mb:.2f} MiB in {store.n_shards} shards; "
        f"write {store_write_mb_s:.1f} MiB/s, "
        f"read {store_read_mb_s:.1f} MiB/s"
    )

    # Zero-copy dispatch: profile a store through the serial path and
    # through process pools of 1/2/4 workers using shard-ref dispatch
    # (workers mmap the store; no scenario pickling anywhere).  Pools
    # are warmed before timing, best-of-two each.  The local gate scales
    # with the cores actually present: speedup[w] >= 0.8 * min(w, cores)
    # — on a single core the process backend may not lose more than 20%
    # to dispatch overhead; with real cores it must win.  Dispatch cost
    # is per-window, so the gate is measured at >= 800 scenarios where
    # solver work dominates and the ratio is stable run-to-run.
    from repro.api import Profiler, RuntimeConfig, active_shared_segments

    dispatch_n = max(args.scenarios, 800)
    if dispatch_n == len(dataset):
        dispatch_dataset, dispatch_store = dataset, store
    else:
        dispatch_dataset = run_simulation(
            DatacenterConfig(
                seed=args.seed, target_unique_scenarios=dispatch_n
            )
        ).dataset
        dispatch_store = write_store(
            dispatch_dataset,
            RESULTS_PATH.parent / "smoke_dispatch_store",
            shard_size=64,
            overwrite=True,
        )

    profile_serial_s, serial_profiled = min(
        (
            _timed(lambda: Profiler().profile(dispatch_store))
            for _ in range(2)
        ),
        key=lambda pair: pair[0],
    )
    print(
        f"profile serial:    {profile_serial_s:7.3f} s "
        f"({len(dispatch_dataset)} scenarios)"
    )

    cpu_count = available_workers()
    profile_parallel_s: dict[str, float] = {}
    profile_speedup: dict[str, float] = {}
    shardref_matrices = {}
    for n_workers in (1, 2, 4):
        with ProcessExecutor(max_workers=n_workers) as pool:
            pool.map(abs, range(n_workers))  # warm the workers
            wall, profiled = min(
                (
                    _timed(
                        lambda: Profiler().profile(
                            dispatch_store, runtime=pool
                        )
                    )
                    for _ in range(2)
                ),
                key=lambda pair: pair[0],
            )
        profile_parallel_s[str(n_workers)] = round(wall, 4)
        profile_speedup[str(n_workers)] = round(
            profile_serial_s / wall if wall else 0.0, 3
        )
        shardref_matrices[n_workers] = profiled.matrix
        print(
            f"profile process:{n_workers}  {wall:7.3f} s "
            f"(speedup {profile_speedup[str(n_workers)]:.2f}x, "
            f"gate >= {0.8 * min(n_workers, cpu_count):.2f}x)"
        )

    # Every dispatch transport must produce the bit-identical matrix:
    # shard refs (above), shared-memory tables and pickled chunks.
    shm_profiled = Profiler().profile(
        dispatch_dataset,
        runtime=RuntimeConfig(executor="process:2", dispatch="shm"),
    )
    pickle_profiled = Profiler().profile(
        dispatch_dataset,
        runtime=RuntimeConfig(executor="process:2", dispatch="pickle"),
    )
    inline_profiled = Profiler().profile(dispatch_dataset)
    dispatch_identical = bool(
        all(
            np.array_equal(serial_profiled.matrix, matrix)
            for matrix in shardref_matrices.values()
        )
        and np.array_equal(serial_profiled.matrix, inline_profiled.matrix)
        and np.array_equal(inline_profiled.matrix, shm_profiled.matrix)
        and np.array_equal(inline_profiled.matrix, pickle_profiled.matrix)
    )
    shm_leaked_segments = len(active_shared_segments())
    runtime_speedup_ok = all(
        profile_speedup[str(w)] >= 0.8 * min(w, cpu_count)
        for w in (1, 2, 4)
    )
    print(
        f"dispatch modes bit-identical: {dispatch_identical}; "
        f"leaked shm segments: {shm_leaked_segments}; "
        f"speedup gate: {'ok' if runtime_speedup_ok else 'FAILED'}"
    )

    fit_config = FlareConfig()
    memory_fit_s = min(
        _timed(lambda: Flare(fit_config).fit(dataset))[0]
        for _ in range(2)
    )
    stream_times = [_timed(lambda: Flare(fit_config).fit(store)) for _ in range(2)]
    streaming_fit_s = min(t for t, _ in stream_times)
    streaming_flare = stream_times[0][1]
    memory_flare = Flare(fit_config).fit(dataset)
    streaming_fit_overhead_pct = (
        (streaming_fit_s - memory_fit_s) / memory_fit_s * 100.0
        if memory_fit_s
        else 0.0
    )
    assignments_identical = bool(
        np.array_equal(
            memory_flare.analysis.kmeans.labels,
            streaming_flare.analysis.kmeans.labels,
        )
    )
    print(
        f"fit: in-memory {memory_fit_s:.3f} s, "
        f"streaming {streaming_fit_s:.3f} s "
        f"(overhead {streaming_fit_overhead_pct:+.2f}%, budget < 10%); "
        f"assignments identical: {assignments_identical}"
    )

    # Fleet-health observatory overhead.  The drift monitor rides the
    # profiling pass, so its own cost is the per-batch scoring math —
    # probe that directly (like the disabled-tracer path): profile the
    # store once into cached batches, time the scoring loop over them,
    # and bill it against the profiling wall it rides on.  A wall-clock
    # delta of two ~0.5 s passes cannot resolve a 2% budget; the probe
    # can.
    from repro.api import DriftMonitor, DriftState, RunLedger, record_run

    monitor = DriftMonitor(memory_flare)
    fit_profiler = fit_config.make_profiler()
    dispatch_durations = dispatch_store.durations()

    def _profile_batches():
        return [
            (
                batch.matrix,
                dispatch_durations[
                    batch.start_row : batch.start_row + batch.matrix.shape[0]
                ],
            )
            for batch in fit_profiler.iter_profile(dispatch_store)
        ]

    profile_runs = [_timed(_profile_batches) for _ in range(2)]
    monitor_profile_s = min(t for t, _ in profile_runs)
    profiled_batches = profile_runs[0][1]

    def _score_batches():
        state = DriftState(n_clusters=monitor.baseline.n_clusters)
        for matrix, durations in profiled_batches:
            state = state.merge(monitor.batch_state(matrix, durations))
        return state

    score_runs = [_timed(_score_batches) for _ in range(2)]
    monitor_score_s = min(t for t, _ in score_runs)
    monitor_overhead_pct = (
        monitor_score_s / monitor_profile_s * 100.0
        if monitor_profile_s
        else 0.0
    )
    monitor_gate_enforced = monitor_profile_s >= MIN_GATE_WALL_S
    monitor_overhead_ok = (
        monitor_overhead_pct < OVERHEAD_BUDGET_PCT
        or not monitor_gate_enforced
    )
    drift_report = monitor.report(score_runs[0][1])
    drift_report_path = RESULTS_PATH.parent / "drift_report.json"
    drift_report_path.write_text(
        json.dumps(drift_report.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(
        f"monitor: scoring {monitor_score_s * 1e3:.1f} ms on a "
        f"{monitor_profile_s:.3f} s profiling pass "
        f"(overhead {monitor_overhead_pct:.3f}%, "
        f"status {drift_report.status}); report -> {drift_report_path}"
    )

    # Ledger overhead: one fsync'd append per instrumented run, probed
    # directly (like the disabled-tracer path) and billed against the
    # fit that emits it.
    probe_path = RESULTS_PATH.parent / "ledger_probe.jsonl"
    probe_path.unlink(missing_ok=True)
    probe_ledger = RunLedger(probe_path)
    n_appends = 64
    probe_start = time.perf_counter()
    for i in range(n_appends):
        record_run(
            "probe", metrics={"i": float(i)}, ledger=probe_ledger
        )
    ledger_append_s = (time.perf_counter() - probe_start) / n_appends
    probe_path.unlink(missing_ok=True)
    ledger_overhead_pct = (
        ledger_append_s / memory_fit_s * 100.0 if memory_fit_s else 0.0
    )
    ledger_gate_enforced = memory_fit_s >= MIN_GATE_WALL_S
    ledger_overhead_ok = (
        ledger_overhead_pct < OVERHEAD_BUDGET_PCT
        or not ledger_gate_enforced
    )
    obs_overhead_ok = monitor_overhead_ok and ledger_overhead_ok
    print(
        f"ledger: {ledger_append_s * 1e3:.2f} ms/append = "
        f"{ledger_overhead_pct:.3f}% of a fit; "
        f"observatory gate: {'ok' if obs_overhead_ok else 'FAILED'}"
    )

    ok = (
        identical
        and traced_identical
        and resilient_identical
        and assignments_identical
        and batch_identical
        and dispatch_identical
        and runtime_speedup_ok
        and shm_leaked_segments == 0
        and tracing_overhead_ok
        and obs_overhead_ok
    )

    # One schema-versioned RunRecord through the run-ledger API: config
    # knobs, flat numeric metrics (nested values dotted, matching what
    # the legacy-record reader produces), gate booleans as labels, and
    # the traced section's span breakdown as explicit stages.  This is
    # the history `repro ledger check` gates.
    metrics = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "untraced_s": round(untraced_s, 4),
        "traced_s": round(traced_s, 4),
        "tracing_overhead_pct": round(overhead_pct, 3),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "resilient_s": round(resilient_s, 4),
        "resilience_overhead_pct": round(resilience_overhead_pct, 3),
        "store_mb": round(store_mb, 3),
        "store_n_shards": store.n_shards,
        "store_write_mb_s": round(store_write_mb_s, 2),
        "store_read_mb_s": round(store_read_mb_s, 2),
        "memory_fit_s": round(memory_fit_s, 4),
        "streaming_fit_s": round(streaming_fit_s, 4),
        "streaming_fit_overhead_pct": round(streaming_fit_overhead_pct, 3),
        "profile_serial_s": round(profile_serial_s, 4),
        "shm_leaked_segments": shm_leaked_segments,
        "scalar_solver_s": round(scalar_solver_s, 4),
        "batched_solver_s": round(batched_solver_s, 4),
        "batch_solver_speedup_x": round(batch_solver_speedup_x, 2),
        "monitor_score_s": round(monitor_score_s, 6),
        "monitor_profile_s": round(monitor_profile_s, 4),
        "monitor_overhead_pct": round(monitor_overhead_pct, 3),
        "monitor_psi_total": round(drift_report.psi_total, 6),
        "monitor_novelty_rate": round(drift_report.novelty_rate, 4),
        "ledger_append_s": round(ledger_append_s, 6),
        "ledger_overhead_pct": round(ledger_overhead_pct, 4),
    }
    for n_workers, wall in profile_parallel_s.items():
        metrics[f"profile_parallel_s.{n_workers}"] = wall
    for n_workers, ratio in profile_speedup.items():
        metrics[f"profile_speedup.{n_workers}"] = ratio
    for size, throughput in batch_throughput_scn_s.items():
        metrics[f"batch_throughput_scn_s.{size}"] = throughput
    ledger = RunLedger(args.ledger if args.ledger else RESULTS_PATH)
    record = record_run(
        "bench",
        config={
            "workers": args.workers,
            "n_trials": args.trials,
            "n_scenarios": len(dataset),
            "dispatch_n_scenarios": len(dispatch_dataset),
            "seed": args.seed,
        },
        metrics=metrics,
        labels={
            "bit_identical": identical,
            "traced_bit_identical": traced_identical,
            "resilient_bit_identical": resilient_identical,
            "streaming_assignments_identical": assignments_identical,
            "runtime_speedup_ok": runtime_speedup_ok,
            "dispatch_identical": dispatch_identical,
            "batch_identical": batch_identical,
            "tracing_overhead_ok": tracing_overhead_ok,
            "tracing_gate_enforced": tracing_gate_enforced,
            "monitor_status": drift_report.status,
            "obs_overhead_ok": obs_overhead_ok,
            "ok": ok,
        },
        stages=stage_breakdown,
        ledger=ledger,
    )
    print(f"recorded {record.run_id} -> {ledger.path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
