"""Smoke benchmark: sampling-baseline wall-clock, serial vs process pool.

Times the 1,000-trial random-sampling baseline (the hottest fan-out
loop) with the serial executor and with a process pool, verifies the
estimates are bit-identical, and appends one JSON line per run to
``benchmarks/results/bench_smoke.jsonl``.  Run via ``make bench-smoke``.

On multi-core machines the process pool should win clearly (the
acceptance bar is >= 2x on >= 4 cores); on a single core it only adds
dispatch overhead — the record keeps ``cpu_count`` alongside the
timings so the two situations are distinguishable in the artefact.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

from repro.api import (
    DatacenterConfig,
    FEATURE_2_DVFS,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    evaluate_by_sampling,
    evaluate_full_datacenter,
    run_simulation,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "bench_smoke.jsonl"
)


def _time_run(dataset, truth, executor, *, n_trials: int, seed: int):
    # The one-time truth computation is passed in precomputed so the
    # timing isolates the trial fan-out the executor actually affects.
    start = time.perf_counter()
    evaluation = evaluate_by_sampling(
        dataset,
        FEATURE_2_DVFS,
        sample_size=18,
        n_trials=n_trials,
        seed=seed,
        truth=truth,
        executor=executor,
    )
    return time.perf_counter() - start, evaluation.trials.estimates


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=1000)
    parser.add_argument("--scenarios", type=int, default=300)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--workers",
        type=int,
        default=available_workers(),
        help="process-pool size for the parallel run",
    )
    args = parser.parse_args(argv)

    print(
        f"simulating {args.scenarios} scenarios "
        f"(seed {args.seed}) ...",
        flush=True,
    )
    dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    ).dataset

    truth = evaluate_full_datacenter(dataset, FEATURE_2_DVFS)

    serial_s, serial_estimates = _time_run(
        dataset, truth, SerialExecutor(), n_trials=args.trials, seed=args.seed
    )
    print(f"serial:         {serial_s:8.3f} s ({args.trials} trials)")

    with ProcessExecutor(max_workers=args.workers) as pool:
        # Warm the pool so worker start-up is not billed to the trials.
        pool.map(abs, range(args.workers))
        parallel_s, parallel_estimates = _time_run(
            dataset, truth, pool, n_trials=args.trials, seed=args.seed
        )
    print(
        f"process:{args.workers:<2}     {parallel_s:8.3f} s "
        f"(speedup {serial_s / parallel_s:.2f}x)"
    )

    identical = bool(np.array_equal(serial_estimates, parallel_estimates))
    print(f"bit-identical estimates: {identical}")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpu_count": available_workers(),
        "workers": args.workers,
        "n_trials": args.trials,
        "n_scenarios": len(dataset),
        "seed": args.seed,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical": identical,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    with RESULTS_PATH.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
    print(f"recorded -> {RESULTS_PATH}")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
