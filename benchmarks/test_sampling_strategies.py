"""Benchmark: sampling strategies vs FLARE at equal cost (extension)."""

from repro.experiments import sampling_strategies


def test_sampling_strategies(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        sampling_strategies.run,
        args=(paper_ctx,),
        kwargs={"n_trials": 1000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_result("sampling_strategies", result.render(), result)
    flare = result.row("FLARE").mean_abs_error_pct
    for row in result.rows:
        if row.strategy != "FLARE":
            assert flare < row.mean_abs_error_pct
