"""Benchmark: regenerate Figure 1 — the methodology landscape."""

from repro.experiments import fig01_landscape


def test_fig01_landscape(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig01_landscape.run,
        args=(paper_ctx,),
        kwargs={"n_trials": 1000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_result("fig01", result.render(), result)
    flare = result.point("FLARE")
    # The figure's message: FLARE sits in the accurate-and-cheap corner.
    assert flare.worst_error_pct < result.point("sampling-based").worst_error_pct
    assert flare.worst_error_pct < (
        result.point("load-testing benchmarks").worst_error_pct
    )
    assert (
        result.point("full datacenter (truth)").cost_scenarios
        / flare.cost_scenarios
        > 40.0
    )
