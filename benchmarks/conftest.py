"""Shared fixtures for the benchmark harness.

Benchmarks run at the paper's scale: a 895-scenario datacenter, 18
clusters, the Table 4 features.  The context (simulation + fitted FLARE
model + memoised truths) is built once per session.  Every benchmark
prints the same rows/series its paper figure reports and appends them to
``benchmarks/results/<figure>.txt`` so EXPERIMENTS.md can be regenerated
from the artefacts.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import get_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_ctx():
    """The paper-scale experiment context (895 scenarios, k=18)."""
    return get_context("paper", seed=2023)


@pytest.fixture(scope="session")
def save_result():
    """Persist a figure report under benchmarks/results/.

    Writes the rendered text always, and — when the result object is
    passed — a machine-readable JSON artefact next to it.
    """
    import json

    from repro.reporting import to_jsonable

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(to_jsonable(data), indent=1)
            )
        print()
        print(text)

    return _save
