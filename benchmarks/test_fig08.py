"""Benchmark: regenerate Figure 8 — high-level metric interpretations."""

from repro.experiments import fig08_pc_interpretation


def test_fig08_pc_interpretation(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig08_pc_interpretation.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("fig08", result.render(), result)
    assert result.n_components == paper_ctx.flare.analysis.n_components
    # Two-level profiling shows up in the PCs (paper's PC10-style traits).
    assert len(result.components_mixing_scopes()) >= 1
