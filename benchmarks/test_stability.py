"""Benchmark: clustering stability at paper scale (extension)."""

from repro.experiments import stability


def test_stability(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        stability.run, args=(paper_ctx,), rounds=1, iterations=1
    )
    save_result("stability", result.render(), result)
    assert result.min_seed_ari > 0.2
    assert result.estimate_spread_pct < 2.0
