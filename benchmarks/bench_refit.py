"""Drift-then-refit benchmark: incremental refit cost and error parity.

Exercises the continuous-fleet-mode claim (docs/fleet.md): refitting a
FLARE model incrementally over a grown store — profiling only the new
rows and warm-starting the clustering — must cost a fraction of the
from-scratch refit while landing on an equivalent model.  Appends one
schema-versioned RunRecord per run to
``benchmarks/results/bench_refit.jsonl`` (gated by ``repro ledger
check`` in CI):

* **Cost.**  ``refit_cost_ratio`` = incremental wall / full-refit wall,
  best-of-``--repeats`` each, over the same grown store (the model in
  force covers ``--watermark-frac`` of the rows; the rest is the drift
  the refit absorbs).  Acceptance bar: <= 0.35.
* **Parity.**  ``refit_error_parity`` = relative difference of the two
  models' ``sse_per_scenario`` health baseline.  Acceptance bar:
  <= 0.05 — the incremental model's error stays within 5% of the full
  refit's.
* **Fixed point.**  A warm-started refit of the *unchanged* grown
  store must reproduce the incremental model bit for bit
  (``fixed_point_ok``) — the equivalence the refit battery
  (tests/core/test_refit.py) proves in depth.

The scaler-drift soundness gate is opened wide here (``--max-drift``):
the reduced synthetic stream drifts more per row than a real fleet, and
this benchmark measures the incremental *machinery*, not the fallback
policy (which tests/core/test_refit.py covers).
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import time

from repro.api import (
    DatacenterConfig,
    FlareConfig,
    RunLedger,
    record_run,
    run_simulation,
    write_store,
)
from repro.core.analyzer import AnalyzerConfig
from repro.core.refit import refit
from repro.io.serialization import fitted_digest
from repro.store.live import StoreSlice

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "bench_refit.jsonl"
)

COST_RATIO_GATE = 0.35
ERROR_PARITY_GATE = 0.05


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=600)
    parser.add_argument(
        "--watermark-frac",
        type=float,
        default=0.75,
        help="fraction of the store the previous model already covers",
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--shard-size", type=int, default=64)
    parser.add_argument("--clusters", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--max-drift",
        type=float,
        default=1e9,
        help="scaler-drift gate for the incremental refit (see module doc)",
    )
    parser.add_argument(
        "--ledger",
        type=pathlib.Path,
        default=None,
        help=f"run-ledger JSONL to append to (default: {RESULTS_PATH})",
    )
    args = parser.parse_args(argv)
    results_dir = RESULTS_PATH.parent
    results_dir.mkdir(parents=True, exist_ok=True)
    scratch = results_dir / "refit_bench_scratch"
    if scratch.exists():
        shutil.rmtree(scratch)
    scratch.mkdir(parents=True)

    config = FlareConfig(
        analyzer=AnalyzerConfig(n_clusters=args.clusters)
    )
    print(
        f"simulating {args.scenarios} scenarios (seed {args.seed}) ...",
        flush=True,
    )
    dataset = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    ).dataset
    store = write_store(
        dataset, scratch / "store", shard_size=args.shard_size
    )
    n_total = len(store)
    watermark = max(2, int(n_total * args.watermark_frac))
    print(
        f"store: {n_total} rows; previous model covers {watermark} "
        f"({watermark / n_total:.0%})"
    )

    # Generation 0 over the covered prefix; its spill is what every
    # incremental repeat reuses.  This also prewarms the solver stack so
    # neither timed path pays first-call costs.
    spill0 = scratch / "spill0"
    gen0 = refit(StoreSlice(store, 0, watermark), config, spill_dir=spill0)

    full_times = []
    for attempt in range(max(args.repeats, 1)):
        start = time.perf_counter()
        full = refit(store, config, spill_dir=scratch / f"full{attempt}")
        full_times.append(time.perf_counter() - start)
    full_refit_s = min(full_times)
    print(f"full refit ({n_total} rows):        {full_refit_s:8.2f} s")

    inc_times = []
    for attempt in range(max(args.repeats, 1)):
        spill = scratch / f"inc{attempt}"
        shutil.copytree(spill0, spill)
        start = time.perf_counter()
        inc = refit(
            store,
            prev=gen0,
            spill_dir=spill,
            mode="incremental",
            trigger="drift:warn",
            max_scaler_drift=args.max_drift,
        )
        inc_times.append(time.perf_counter() - start)
    inc_refit_s = min(inc_times)
    assert inc.lineage[-1].kind == "incremental"
    refit_cost_ratio = inc_refit_s / full_refit_s if full_refit_s else 0.0
    cost_ok = refit_cost_ratio <= COST_RATIO_GATE
    print(
        f"incremental refit (+{n_total - watermark} rows): "
        f"{inc_refit_s:8.2f} s "
        f"(ratio {refit_cost_ratio:.3f}, gate <= {COST_RATIO_GATE}: "
        f"{'ok' if cost_ok else 'FAILED'})"
    )

    inc_sse = float(inc.representatives.baseline.sse_per_scenario)
    full_sse = float(full.representatives.baseline.sse_per_scenario)
    refit_error_parity = (
        abs(inc_sse - full_sse) / full_sse if full_sse else 0.0
    )
    parity_ok = refit_error_parity <= ERROR_PARITY_GATE
    print(
        f"sse/scenario: incremental {inc_sse:.4f} vs full {full_sse:.4f} "
        f"(parity {refit_error_parity:.4f}, gate <= {ERROR_PARITY_GATE}: "
        f"{'ok' if parity_ok else 'FAILED'})"
    )

    # Fixed point: refitting the unchanged store from the incremental
    # model must change nothing, bit for bit.
    again = refit(
        store,
        prev=inc,
        spill_dir=scratch / "inc0",
        max_scaler_drift=args.max_drift,
    )
    fixed_point_ok = fitted_digest(again) == fitted_digest(inc)
    print(f"warm-start fixed point bit-identical: {fixed_point_ok}")

    ok = bool(cost_ok and parity_ok and fixed_point_ok)

    ledger = RunLedger(args.ledger if args.ledger else RESULTS_PATH)
    record = record_run(
        "bench_refit",
        config={
            "n_scenarios": n_total,
            "watermark": watermark,
            "shard_size": args.shard_size,
            "n_clusters": args.clusters,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        metrics={
            "full_refit_s": round(full_refit_s, 4),
            "inc_refit_s": round(inc_refit_s, 4),
            "refit_cost_ratio": round(refit_cost_ratio, 4),
            "refit_error_parity": round(refit_error_parity, 6),
            "inc_sse_per_scenario": round(inc_sse, 6),
            "full_sse_per_scenario": round(full_sse, 6),
            "n_new_rows": float(n_total - watermark),
        },
        labels={
            "cost_ok": cost_ok,
            "parity_ok": parity_ok,
            "fixed_point_ok": fixed_point_ok,
            "ok": ok,
        },
        ledger=ledger,
    )
    print(f"recorded {record.run_id} -> {ledger.path}")
    shutil.rmtree(scratch)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
