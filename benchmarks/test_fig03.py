"""Benchmark: regenerate Figure 3 — the co-location scenario landscape."""

from repro.experiments import fig03_scenario_landscape


def test_fig03a_occupancy(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig03_scenario_landscape.run_occupancy,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result("fig03a", result.render(), result)
    assert result.n_scenarios == len(paper_ctx.dataset)
    # Step-like: far fewer occupancy levels than scenarios.
    assert result.distinct_levels <= 12


def test_fig03b_impact_vs_mpki(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig03_scenario_landscape.run_impact_vs_mpki,
        args=(paper_ctx,),
        rounds=1,
        iterations=1,
    )
    save_result("fig03b", result.render(), result)
    # Impact is not explained by MPKI (paper §3.2).
    assert abs(result.pearson_r) < 0.5
