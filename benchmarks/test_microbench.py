"""Micro-benchmarks of the library's hot kernels.

Unlike the figure benches (single-shot regeneration), these time the
inner loops the pipeline's cost is made of: the contention solver, the
Profiler's per-scenario collection, PCA, k-means, and a full Flare fit at
reduced scale.  Useful for tracking performance regressions.
"""

import numpy as np
import pytest

from repro.cluster import DatacenterConfig, run_simulation
from repro.core import Analyzer, AnalyzerConfig, Flare, FlareConfig, refine
from repro.perfmodel import RunningInstance, solve_colocation
from repro.stats import PCA, KMeans
from repro.telemetry import Profiler
from repro.workloads import HP_JOBS, LP_JOBS


@pytest.fixture(scope="module")
def micro_sim():
    return run_simulation(DatacenterConfig(seed=77, target_unique_scenarios=100))


@pytest.fixture(scope="module")
def heavy_colocation():
    return [
        RunningInstance(HP_JOBS[name])
        for name in ("WSC", "GA", "DC", "DA", "IA", "DS", "MS", "WSV")
    ] + [
        RunningInstance(LP_JOBS[name])
        for name in ("mcf", "libquantum", "omnetpp", "sjeng")
    ]


def test_bench_contention_solver(benchmark, heavy_colocation, micro_sim):
    machine = micro_sim.dataset.shape.perf
    result = benchmark(solve_colocation, machine, heavy_colocation)
    assert result.converged


def test_bench_profiler_collect(benchmark, micro_sim):
    profiler = Profiler(noise_sigma=0.0, seed=1)
    dataset = micro_sim.dataset
    scenario = max(dataset.scenarios, key=lambda s: len(s.instances))
    vector = benchmark(
        profiler.collect, scenario, dataset, dataset.shape.perf
    )
    assert np.isfinite(vector).all()


def test_bench_pca_fit(benchmark, micro_sim):
    matrix = Profiler(noise_sigma=0.02, seed=1).profile(micro_sim.dataset).matrix
    pca = benchmark(lambda: PCA().fit(matrix))
    assert pca.result_ is not None


def test_bench_kmeans_fit(benchmark):
    rng = np.random.default_rng(5)
    points = rng.normal(size=(900, 10))
    result = benchmark(
        lambda: KMeans(18, n_init=4, seed=np.random.default_rng(0)).fit(points)
    )
    assert result.n_clusters == 18


def test_bench_analyzer(benchmark, micro_sim):
    profiled = Profiler(noise_sigma=0.02, seed=1).profile(micro_sim.dataset)
    refined = refine(profiled)
    analyzer = Analyzer(AnalyzerConfig(n_clusters=8, kmeans_restarts=4))
    analysis = benchmark(analyzer.analyze, refined)
    assert analysis.n_clusters == 8


def test_bench_flare_fit_small(benchmark, micro_sim):
    config = FlareConfig(
        analyzer=AnalyzerConfig(n_clusters=8, kmeans_restarts=4)
    )
    flare = benchmark.pedantic(
        lambda: Flare(config).fit(micro_sim.dataset), rounds=3, iterations=1
    )
    assert flare.analysis.n_clusters == 8


def test_bench_simulation(benchmark):
    result = benchmark.pedantic(
        lambda: run_simulation(
            DatacenterConfig(seed=5, target_unique_scenarios=200)
        ),
        rounds=3,
        iterations=1,
    )
    assert result.n_unique_scenarios == 200
