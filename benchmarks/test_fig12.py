"""Benchmark: regenerate Figure 12 — estimation accuracy comparison."""

from repro.experiments import fig12_accuracy


def test_fig12_accuracy(benchmark, paper_ctx, save_result):
    result = benchmark.pedantic(
        fig12_accuracy.run,
        args=(paper_ctx,),
        kwargs={"n_trials": 1000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_result("fig12", result.render(), result)
    # Headline claims (paper §5.3): FLARE errors < 1 % absolute, and below
    # equal-cost sampling's worst case for every feature.
    assert result.max_flare_all_job_error() < 1.0
    for row in result.all_job:
        assert row.flare_error_pct < row.sampling_max_error_pct
