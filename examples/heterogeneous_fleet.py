#!/usr/bin/env python3
"""Heterogeneous fleets: one representative set per machine shape (§5.5).

Representative scenarios do not transfer across machine shapes — a
co-location that fits 48 vCPUs may not fit 32, and even feasible mixes
occupy the smaller machine differently.  The paper's recommendation is to
derive and maintain a representative set per shape.  This example does
exactly that for the Default (Table 2) and Small (Table 5) shapes, then
evaluates the DVFS feature on both.

Run:
    python examples/heterogeneous_fleet.py [--seed 21]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    DEFAULT_SHAPE,
    FEATURE_2_DVFS,
    Flare,
    FlareConfig,
    SMALL_SHAPE,
    evaluate_full_datacenter,
    run_simulation,
)
from repro.reporting import render_table


def fit_shape(shape, seed, scenarios, clusters):
    result = run_simulation(
        DatacenterConfig(
            shape=shape, seed=seed, target_unique_scenarios=scenarios
        )
    )
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=clusters))
    ).fit(result.dataset)
    return result, flare


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--scenarios", type=int, default=300)
    parser.add_argument("--clusters", type=int, default=12)
    args = parser.parse_args()

    fleets = {}
    for shape in (DEFAULT_SHAPE, SMALL_SHAPE):
        print(f"Deriving representatives for the '{shape.name}' shape...")
        result, flare = fit_shape(
            shape, args.seed, args.scenarios, args.clusters
        )
        fleets[shape.name] = (result, flare)
        print(
            f"  {len(result.dataset)} scenarios -> "
            f"{flare.analysis.n_clusters} groups "
            f"({flare.analysis.n_components} high-level metrics)"
        )

    # Show why transfer fails: how many default-shape mixes even fit Small?
    default_dataset = fleets["default"][0].dataset
    infeasible = sum(
        1
        for s in default_dataset.scenarios
        if s.total_vcpus > SMALL_SHAPE.vcpus
        or sum(i.signature.dram_gb for i in s.instances) > SMALL_SHAPE.dram_gb
    )
    print(
        f"\n{infeasible}/{len(default_dataset)} default-shape co-locations "
        "cannot exist on the small shape — a shared representative set is "
        "impossible (paper Fig. 14a)."
    )

    print("\nEvaluating the DVFS cap (Feature 2) per shape:")
    rows = []
    for name, (result, flare) in fleets.items():
        estimate = flare.evaluate(FEATURE_2_DVFS)
        truth = evaluate_full_datacenter(result.dataset, FEATURE_2_DVFS)
        rows.append(
            [
                name,
                truth.overall_reduction_pct,
                estimate.reduction_pct,
                abs(estimate.reduction_pct - truth.overall_reduction_pct),
            ]
        )
    print(
        render_table(
            ["shape", "truth %", "FLARE %", "error pp"],
            rows,
            title="Per-shape DVFS impact (MIPS reduction)",
        )
    )
    print(
        "\nNote the impacts differ across shapes: the small machine's lower "
        "frequency ceiling (2.6 GHz) means capping at 1.8 GHz removes less "
        "performance than on the default machine (2.9 GHz)."
    )


if __name__ == "__main__":
    main()
