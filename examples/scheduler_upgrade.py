#!/usr/bin/env python3
"""Scheduler upgrades: reweight instead of re-profiling (§5.6).

A new scheduler shifts *which* co-locations occur and how often, but does
not invent unseen machine behaviours.  FLARE therefore adapts by
classifying the new scheduler's scenarios into the existing behaviour
groups and recomputing group weights — skipping the expensive step 1
(metric collection) entirely.

This example switches the datacenter from the load-balancing scheduler to
a consolidating best-fit-packing policy and shows the reweighted model
tracking the new truth.

Run:
    python examples/scheduler_upgrade.py [--seed 9]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    FEATURE_2_DVFS,
    Flare,
    FlareConfig,
    evaluate_full_datacenter,
    run_simulation,
)
from repro.cluster import BestFitPackingScheduler
from repro.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--scenarios", type=int, default=300)
    parser.add_argument("--clusters", type=int, default=12)
    args = parser.parse_args()

    config = DatacenterConfig(
        seed=args.seed, target_unique_scenarios=args.scenarios
    )

    print("Phase 1: profile the datacenter under the current scheduler...")
    before = run_simulation(config)
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=args.clusters))
    ).fit(before.dataset)
    stale = flare.evaluate(FEATURE_2_DVFS)
    print(f"  estimate under old scheduler: {stale.reduction_pct:.2f}%")

    print("\nPhase 2: the scheduler team ships best-fit packing...")
    after = run_simulation(config, scheduler=BestFitPackingScheduler())
    shared = {s.key for s in before.dataset.scenarios} & {
        s.key for s in after.dataset.scenarios
    }
    print(
        f"  new co-location population: {len(after.dataset)} scenarios, "
        f"only {len(shared)} exact mixes in common with the old one"
    )

    print("\nPhase 3: reweight FLARE from step 3 (no re-profiling)...")
    reweighted = flare.reweight_by_classification(after.dataset)
    adapted = reweighted.evaluate(FEATURE_2_DVFS)
    truth = evaluate_full_datacenter(after.dataset, FEATURE_2_DVFS)

    print(
        render_table(
            ["estimator", "MIPS reduction %", "error pp"],
            [
                [
                    "new-scheduler truth (full datacenter)",
                    truth.overall_reduction_pct,
                    0.0,
                ],
                [
                    "stale FLARE (old weights)",
                    stale.reduction_pct,
                    abs(stale.reduction_pct - truth.overall_reduction_pct),
                ],
                [
                    "reweighted FLARE (classified new population)",
                    adapted.reduction_pct,
                    abs(adapted.reduction_pct - truth.overall_reduction_pct),
                ],
            ],
            title="Feature 2 under the new scheduler",
        )
    )

    old_w = flare.analysis.cluster_weights
    new_w = reweighted.analysis.cluster_weights
    print("\nHow the behaviour-group weights moved:")
    for cid, (a, b) in enumerate(zip(old_w, new_w)):
        arrow = "+" if b > a else "-"
        print(f"  cluster {cid:>2}: {a:6.1%} -> {b:6.1%}  {arrow}")


if __name__ == "__main__":
    main()
