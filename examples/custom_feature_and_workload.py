#!/usr/bin/env python3
"""Extending FLARE: a custom workload and a custom feature.

FLARE is a generic methodology (paper §1): it is not tied to the Table 3
benchmarks or the Table 4 features.  This example adds an ML-inference
service to the HP catalogue, runs a datacenter that hosts it, and
evaluates a custom shape-preserving feature — a DRAM power-save mode that
adds access latency.

Run:
    python examples/custom_feature_and_workload.py [--seed 3]
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    Flare,
    FlareConfig,
    evaluate_full_datacenter,
    run_simulation,
)
from repro.cluster import Feature, SubmissionConfig, SubmissionSystem
from repro.perfmodel import JobSignature, MissRatioCurve, Priority
from repro.workloads import HP_JOBS

#: An ML-inference sidecar: dense GEMM kernels, high ILP, bandwidth-hungry,
#: moderate cache footprint — a personality none of the Table 3 jobs has.
ML_INFERENCE = JobSignature(
    name="MLI",
    description="ML Inference — int8 GEMM serving, 4 vCPU container",
    priority=Priority.HIGH,
    vcpus=4,
    dram_gb=10.0,
    base_cpi=0.40,
    frontend_cpi=0.06,
    branch_mpki=1.0,
    l1i_apki=150.0,
    l1d_apki=460.0,
    l2_apki=80.0,
    llc_apki=20.0,
    mrc=MissRatioCurve(half_capacity_mb=8.0, shape=0.8, floor=0.35),
    mem_blocking_factor=0.35,
    write_fraction=0.20,
    active_fraction=0.85,
    network_bytes_per_instr=0.008,
)

#: DRAM power-save: +40 % access latency, everything else unchanged.
#: Machine shape is preserved, so FLARE's representatives stay valid.
DRAM_POWERSAVE = Feature(
    name="dram-powersave",
    description="DRAM power-save mode (+40% access latency)",
    apply=lambda m: dataclasses.replace(
        m, mem_latency_ns=m.mem_latency_ns * 1.4
    ),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--scenarios", type=int, default=250)
    args = parser.parse_args()

    # Extend the catalogue and weight the new service like two normal
    # services so it shows up in plenty of co-locations.
    extended_hp = dict(HP_JOBS)
    extended_hp["MLI"] = ML_INFERENCE
    hp_mix = {name: 1.0 for name in HP_JOBS}
    hp_mix["MLI"] = 2.0

    config = DatacenterConfig(
        seed=args.seed, target_unique_scenarios=args.scenarios
    )
    submission = SubmissionSystem(
        SubmissionConfig(hp_mix=hp_mix),
        np.random.default_rng(args.seed),
        hp_catalogue=extended_hp,
    )
    result = run_simulation(config, submission_system=submission)
    dataset = result.dataset
    print(f"Collected {len(dataset)} scenarios (incl. the MLI service)")
    print(f"{len(dataset.scenarios_with_job('MLI'))} scenarios host MLI")

    print("\nFitting FLARE and evaluating the custom feature...")
    flare = Flare(FlareConfig(analyzer=AnalyzerConfig(n_clusters=10))).fit(
        dataset
    )
    estimate = flare.evaluate(DRAM_POWERSAVE)
    truth = evaluate_full_datacenter(dataset, DRAM_POWERSAVE)
    error = abs(estimate.reduction_pct - truth.overall_reduction_pct)
    print(
        f"DRAM power-save impact: FLARE {estimate.reduction_pct:.2f}% "
        f"vs truth {truth.overall_reduction_pct:.2f}% (error {error:.2f} pp)"
    )

    print("\nPer-service view:")
    for job in ("MLI", "GA", "MS", "WSC"):
        per_job = flare.evaluate_job(DRAM_POWERSAVE, job)
        print(f"  {job:4s}: {per_job.reduction_pct:5.2f}%")
    print(
        "(latency-sensitive services like GA should hurt more than "
        "streaming ones like MS)"
    )


if __name__ == "__main__":
    main()
