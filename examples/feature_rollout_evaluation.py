#!/usr/bin/env python3
"""Feature-rollout evaluation: should we deploy these three changes?

The scenario the paper motivates: a datacenter team must decide whether
three candidate changes — restricted cache allocation (freeing LLC for a
co-located accelerator), a lower DVFS ceiling (power capping), and
disabling SMT (side-channel hardening) — are affordable.  Each preserves
machine shape, so FLARE can evaluate all three from one representative
set, and we compare against full-datacenter truth and equal-cost random
sampling.

Run:
    python examples/feature_rollout_evaluation.py [--seed 11]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    Flare,
    FlareConfig,
    PAPER_FEATURES,
    evaluate_by_sampling,
    evaluate_full_datacenter,
    run_simulation,
)
from repro.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scenarios", type=int, default=400)
    parser.add_argument("--clusters", type=int, default=14)
    parser.add_argument("--budget-pct", type=float, default=10.0,
                        help="max tolerable MIPS reduction for rollout")
    args = parser.parse_args()

    print("Collecting datacenter behaviour...")
    result = run_simulation(
        DatacenterConfig(seed=args.seed, target_unique_scenarios=args.scenarios)
    )
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=args.clusters))
    ).fit(result.dataset)

    rows = []
    decisions = []
    for feature in PAPER_FEATURES:
        estimate = flare.evaluate(feature)
        truth = evaluate_full_datacenter(result.dataset, feature)
        sampling = evaluate_by_sampling(
            result.dataset,
            feature,
            sample_size=args.clusters,
            n_trials=500,
            seed=args.seed,
            truth=truth,
        )
        error = abs(estimate.reduction_pct - truth.overall_reduction_pct)
        rows.append(
            [
                feature.name,
                truth.overall_reduction_pct,
                estimate.reduction_pct,
                error,
                sampling.trials.max_error_at_confidence(0.95),
            ]
        )
        verdict = (
            "deploy" if estimate.reduction_pct <= args.budget_pct else "reject"
        )
        decisions.append((feature, estimate.reduction_pct, verdict))

    print()
    print(
        render_table(
            ["feature", "truth %", "FLARE %", "FLARE err", "sampling err@95"],
            rows,
            title="Rollout evaluation (all-job MIPS reduction)",
        )
    )

    print(f"\nDecisions at a {args.budget_pct:.0f}% regression budget:")
    for feature, reduction, verdict in decisions:
        print(f"  {feature.name}: {reduction:5.2f}%  ->  {verdict}")
        print(f"      ({feature.description})")


if __name__ == "__main__":
    main()
