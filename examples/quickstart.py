#!/usr/bin/env python3
"""Quickstart: evaluate a cache-sizing feature with FLARE in ~30 seconds.

Simulates a small datacenter, extracts representative co-location
scenarios, and estimates the impact of shrinking the LLC from 30 MB to
12 MB per socket (the paper's Feature 1) — then checks the estimate
against the expensive full-datacenter evaluation.

Run:
    python examples/quickstart.py [--seed 7] [--scenarios 200]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    FEATURE_1_CACHE,
    Flare,
    FlareConfig,
    evaluate_full_datacenter,
    run_simulation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--scenarios", type=int, default=200)
    parser.add_argument("--clusters", type=int, default=10)
    args = parser.parse_args()

    print("1) Collecting co-location scenarios from the datacenter...")
    result = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    )
    print(
        f"   observed {result.n_unique_scenarios} distinct co-locations "
        f"({result.stats.n_placed} container placements, "
        f"{result.stats.denial_rate:.0%} denials)"
    )

    print("2) Fitting FLARE (profile -> refine -> PCA -> cluster)...")
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=args.clusters))
    ).fit(result.dataset)
    analysis = flare.analysis
    print(
        f"   {flare.profiled.n_metrics} raw metrics -> "
        f"{flare.refined.n_metrics} refined -> "
        f"{analysis.n_components} high-level metrics (PCs), "
        f"{analysis.n_clusters} scenario groups"
    )

    print("3) Evaluating Feature 1 (LLC 30 MB -> 12 MB per socket)...")
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(
        f"   FLARE estimate: {estimate.reduction_pct:.2f}% MIPS reduction "
        f"(replayed only {estimate.evaluation_cost} scenarios)"
    )

    print("4) Verifying against the full-datacenter evaluation...")
    truth = evaluate_full_datacenter(result.dataset, FEATURE_1_CACHE)
    error = abs(estimate.reduction_pct - truth.overall_reduction_pct)
    print(
        f"   ground truth: {truth.overall_reduction_pct:.2f}% "
        f"({truth.evaluation_cost} scenario evaluations)"
    )
    print(
        f"   FLARE error: {error:.2f} pp at "
        f"{truth.evaluation_cost / estimate.evaluation_cost:.0f}x lower cost"
    )

    print("\nPer-group breakdown (weight x impact):")
    for impact in estimate.per_cluster:
        print(
            f"   cluster {impact.cluster_id:>2}  weight {impact.weight:5.1%}"
            f"  impact {impact.reduction_pct:6.2f}%"
            f"  (scenario #{impact.scenario_id})"
        )


if __name__ == "__main__":
    main()
