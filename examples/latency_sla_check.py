#!/usr/bin/env python3
"""Evaluating features against a tail-latency SLA — the pluggable metric.

The paper's summary metric is normalised MIPS, but it stresses that FLARE
"is not bound to any specific performance metric".  This example plugs a
queueing-based p99-latency metric into the Replayer and evaluates the
Table 4 features against a latency budget: throughput-acceptable changes
can still be SLA-violating, because queueing amplifies service-time
inflation nonlinearly.

Run:
    python examples/latency_sla_check.py [--seed 13] [--budget-pct 25]
"""

from __future__ import annotations

import argparse

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    Flare,
    FlareConfig,
    PAPER_FEATURES,
    run_simulation,
)
from repro.core import (
    Replayer,
    estimate_all_job_impact,
    latency_scenario_performance,
)
from repro.reporting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--scenarios", type=int, default=250)
    parser.add_argument("--clusters", type=int, default=10)
    parser.add_argument(
        "--budget-pct",
        type=float,
        default=25.0,
        help="max tolerable p99 degradation",
    )
    args = parser.parse_args()

    print("Collecting scenarios and fitting FLARE...")
    result = run_simulation(
        DatacenterConfig(
            seed=args.seed, target_unique_scenarios=args.scenarios
        )
    )
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=args.clusters))
    ).fit(result.dataset)

    # Two replayers over the same representatives: the paper's MIPS
    # metric and the latency alternative.
    latency_replayer = Replayer(
        result.dataset.shape, metric=latency_scenario_performance
    )

    rows = []
    for feature in PAPER_FEATURES:
        mips = flare.evaluate(feature).reduction_pct
        p99 = estimate_all_job_impact(
            flare.representatives, latency_replayer, feature
        ).reduction_pct
        verdict = "OK" if p99 <= args.budget_pct else "SLA VIOLATION"
        rows.append([feature.name, mips, p99, verdict])

    print()
    print(
        render_table(
            ["feature", "MIPS reduction %", "p99 degradation %", "verdict"],
            rows,
            title=(
                f"Throughput vs tail latency (p99 budget "
                f"{args.budget_pct:.0f}%)"
            ),
        )
    )
    print(
        "\nNote how every feature hurts p99 more than MIPS: queueing"
        " amplifies service-time inflation as utilisation rises — the"
        " reason latency-critical fleets must not gate deployments on"
        " throughput alone."
    )


if __name__ == "__main__":
    main()
