#!/usr/bin/env python3
"""Onboarding a real datacenter: traces in, representative scenarios out.

A team adopting FLARE does not use this repo's simulator — they already
have (1) container start/stop logs from their orchestrator and (2) perf
measurements of their services. This example walks that path end to end:

1. calibrate a job signature from measurements (a CAT cache sweep for the
   miss-ratio curve, a solo-run topdown profile for the CPI components);
2. ingest a container-lifecycle trace (CSV) into a scenario dataset;
3. fit FLARE on the ingested dataset and evaluate a feature.

The "measurements" here are synthesised from a hidden ground-truth
signature so the calibration can be checked — on a real system they come
from perf/toplev and a way-masking sweep.

Run:
    python examples/onboard_from_trace.py
"""

from __future__ import annotations

import dataclasses
import tempfile
import zlib

import numpy as np

from repro.api import AnalyzerConfig, FEATURE_1_CACHE, Flare, FlareConfig
from repro.cluster import (
    DEFAULT_SHAPE,
    TraceEvent,
    TraceEventType,
    dataset_from_trace,
)
from repro.perfmodel import (
    MachinePerf,
    RunningInstance,
    calibrate_cpi_components,
    fit_mrc,
    solve_colocation,
)
from repro.io import read_trace_csv, write_trace_csv
from repro.workloads import HP_JOBS, LP_JOBS


def step1_calibrate_signature():
    """Fit the model ingredients from (synthetic) measurements."""
    print("Step 1 — calibrate a signature from measurements")
    ground_truth = HP_JOBS["WSC"]  # pretend this is the team's service

    # (a) Cache-allocation sweep -> miss-ratio curve.
    sweep_mb = np.array([2, 4, 8, 12, 20, 30, 45, 60], dtype=float)
    measured = [ground_truth.mrc.miss_ratio(c) for c in sweep_mb]
    fit = fit_mrc(sweep_mb, measured)
    print(
        f"  MRC fit: half-capacity {fit.mrc.half_capacity_mb:.1f} MB, "
        f"shape {fit.mrc.shape:.2f}, floor {fit.mrc.floor:.2f} "
        f"(rmse {fit.rmse:.4f})"
    )

    # (b) Solo-run profile -> CPI components via topdown.
    solo = solve_colocation(
        MachinePerf(), [RunningInstance(ground_truth)]
    ).instances[0]
    components = calibrate_cpi_components(
        solo.ipc, solo.cpi_stack.topdown()
    )
    print(
        f"  CPI split: base {components.base_cpi:.2f}, "
        f"frontend {components.frontend_cpi:.2f}, "
        f"backend {components.backend_cpi:.2f}"
    )

    calibrated = dataclasses.replace(
        ground_truth, name="SVC", description="calibrated service", mrc=fit.mrc
    )
    return calibrated


def step2_build_trace(catalogue, rng):
    """Synthesise an orchestrator event log (stand-in for real logs)."""
    print("\nStep 2 — ingest the orchestrator's container trace")
    events = []
    t = 0.0
    active = []
    names = list(catalogue)
    counter = 0
    for _ in range(400):
        t += float(rng.exponential(120.0))
        if active and rng.random() < 0.45:
            idx = int(rng.integers(len(active)))
            cid = active.pop(idx)
            machine = zlib.crc32(cid.encode()) % 4
            events.append(
                TraceEvent(t, machine, cid, TraceEventType.STOP)
            )
        else:
            cid = f"c{counter}"
            counter += 1
            job = names[int(rng.integers(len(names)))]
            machine = zlib.crc32(cid.encode()) % 4
            events.append(
                TraceEvent(
                    t,
                    machine,
                    cid,
                    TraceEventType.START,
                    job,
                    float(rng.choice([0.7, 0.85, 1.0])),
                )
            )
            active.append(cid)
    return events


def main() -> None:
    rng = np.random.default_rng(17)
    calibrated = step1_calibrate_signature()

    catalogue = {"SVC": calibrated}
    for name in ("DA", "DC", "GA", "IA"):
        catalogue[name] = HP_JOBS[name]
    for name in ("mcf", "sjeng"):
        catalogue[name] = LP_JOBS[name]

    events = step2_build_trace(catalogue, rng)
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as handle:
        path = handle.name
    write_trace_csv(events, path)
    # Round-trip through CSV: exactly what `repro ingest` does.
    dataset = dataset_from_trace(
        read_trace_csv(path),
        DEFAULT_SHAPE,
        catalogue=catalogue,
        strict=False,
    )
    print(f"  {len(events)} events -> {len(dataset)} distinct co-locations")
    print(
        f"  {len(dataset.scenarios_with_job('SVC'))} scenarios host the "
        "calibrated service"
    )

    print("\nStep 3 — fit FLARE and evaluate a feature")
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=8))
    ).fit(dataset)
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(
        f"  cache-restriction impact: {estimate.reduction_pct:.2f}% MIPS "
        f"reduction across {estimate.evaluation_cost} representative replays"
    )
    svc = flare.evaluate_job(FEATURE_1_CACHE, "SVC")
    print(f"  impact on the calibrated service: {svc.reduction_pct:.2f}%")


if __name__ == "__main__":
    main()
