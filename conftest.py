"""Repository-root pytest configuration.

Command-line options must be registered from an *initial* conftest —
pytest only honours :func:`pytest_addoption` in rootdir-level files —
so the golden-fixture refresh flag lives here rather than under
``tests/``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate committed golden fixtures (tests/perfmodel/golden/) "
            "from the scalar reference solver instead of asserting against "
            "them."
        ),
    )
